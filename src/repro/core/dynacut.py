"""DynaCut orchestrator: dump → rewrite → restore sessions.

:class:`DynaCut` ties the pipeline together.  A customization session

1. checkpoints the target process tree (with DynaCut's modified page
   policy, so code pages land in the image),
2. hands an :class:`~repro.core.rewriter.ImageRewriter` to the caller
   (or to one of the built-in recipes below),
3. restores the rewritten image — same pids, same TCP connections.

Built-in recipes mirror the paper's use cases:

* :meth:`disable_feature` / :meth:`enable_feature` — block or restore a
  feature identified by tracediff, with a trap policy (terminate,
  redirect-to-error-handler, or verify);
* :meth:`remove_init_code` — wipe initialization-only blocks after the
  init phase (optionally in verify mode, where falsely removed blocks
  self-heal and are logged).

Every report carries the virtual-time breakdown of Figure 6/7:
checkpoint, code patch, signal-handler insertion, restore.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from .. import faults, telemetry
from ..telemetry import trace
from ..analysis.dataflow.liveness import live_in_registers
from ..analysis.lint import LintReport, lint_checkpoint
from ..analysis.reachability import RemovalClassification, refine_removal_set
from ..binfmt.self_format import SelfImage
from ..faults import PermanentFault, TransientFault
from ..kernel.kernel import Kernel
from ..kernel.process import Process
from ..tracing.drcov import BlockRecord
from ..criu.checkpoint import checkpoint_tree
from ..criu.costmodel import CriuCostModel, DEFAULT_COST_MODEL
from ..criu.images import CheckpointImage
from ..criu.restore import restore_tree
from .rewriter import ImageRewriter, RewriteError, RewriteStats
from .sighandler import POLICY_REDIRECT, POLICY_TERMINATE, POLICY_VERIFY
from .tracediff import FeatureBlocks
from .transaction import (
    PHASE_BEGIN,
    PHASE_CHECKPOINTED,
    PHASE_COMMITTED,
    PHASE_LINTED,
    PHASE_PRISTINE_SAVED,
    PHASE_RESTORED,
    PHASE_RETRYING,
    PHASE_REWRITTEN,
    PHASE_ROLLED_BACK,
    PHASE_SAVED,
    CustomizationAborted,
    RollbackFailed,
    TxJournal,
)


def enclosing_function(binary: SelfImage, offset: int) -> str | None:
    """Name of the function whose extent contains ``offset``.

    Function extents are derived from the sorted function-symbol
    addresses: each function runs until the next function starts.
    """
    functions = sorted(
        (sym.vaddr, name) for name, sym in binary.functions().items()
    )
    best: str | None = None
    for vaddr, name in functions:
        if vaddr <= offset:
            best = name
        else:
            break
    return best


class TrapPolicy(Enum):
    """What happens when blocked code is reached (§3.2.2)."""

    TERMINATE = "terminate"    # default SIGTRAP disposition kills the process
    REDIRECT = "redirect"      # jump to the app's error handler (403 response)
    VERIFY = "verify"          # restore the byte, log the address, continue

    @property
    def handler_policy(self) -> int:
        return {
            TrapPolicy.TERMINATE: POLICY_TERMINATE,
            TrapPolicy.REDIRECT: POLICY_REDIRECT,
            TrapPolicy.VERIFY: POLICY_VERIFY,
        }[self]


class BlockMode(Enum):
    """How much of a feature to patch."""

    ENTRY = "entry"    # first byte of the first executed unique block
    ALL = "all"        # first byte of every unique block
    WIPE = "wipe"      # every byte of every unique block (anti-ROP)


@dataclass
class RewriteReport:
    """Outcome and virtual-time cost breakdown of one session."""

    pids: list[int]
    image_pages: int
    image_bytes: int
    stats: RewriteStats
    checkpoint_ns: int = 0
    restore_ns: int = 0
    #: DynaLint verdict over the rewritten image (None = lint not run)
    lint: LintReport | None = None
    #: static removal-set refinement applied this session, if any
    refinement: RemovalClassification | None = None
    #: transaction outcome: "committed" or "rolled-back"
    outcome: str = "committed"
    #: pipeline attempts consumed (>1 means transient faults were retried)
    attempts: int = 1
    #: True when the pristine image was restored instead of the rewrite
    rolled_back: bool = False

    @property
    def patch_ns(self) -> int:
        return self.stats.patch_ns

    @property
    def inject_ns(self) -> int:
        return self.stats.inject_ns

    @property
    def total_ns(self) -> int:
        return (
            self.checkpoint_ns
            + self.stats.patch_ns
            + self.stats.inject_ns
            + self.stats.unmap_ns
            + self.restore_ns
        )

    def breakdown_ms(self) -> dict[str, float]:
        """The Figure 6 stacked-bar components, in milliseconds."""
        return {
            "checkpoint": self.checkpoint_ns / 1e6,
            "disable code w/ int3": self.stats.patch_ns / 1e6,
            "insert sighandler": self.stats.inject_ns / 1e6,
            "unmap": self.stats.unmap_ns / 1e6,
            "restore": self.restore_ns / 1e6,
            "total": self.total_ns / 1e6,
        }


@dataclass(frozen=True)
class ShelvedBlock:
    """One block of a disabled feature temporarily back in service.

    Shelving (arXiv 2501.04963's "shelve, don't ditch") restores only
    the blocks live traffic actually trapped, leaving the rest of the
    feature's removal set patched.  The timestamp drives the decay
    timer: a shelved block that stays cold for ``decay_ns`` is
    re-removed through the same transactional rewrite path.
    """

    block: BlockRecord
    #: virtual-clock time the shelve transaction committed
    shelved_ns: int


@dataclass
class _TxState:
    """What one customize attempt has put at risk so far."""

    #: the original tree has been destroyed by the dump
    tree_down: bool = False
    #: deep copy of the unmutated checkpoint — the rollback source
    pristine: CheckpointImage | None = None


@dataclass
class DynaCut:
    """The dynamic code customization framework."""

    kernel: Kernel
    cost_model: CriuCostModel = DEFAULT_COST_MODEL
    image_dir: str = "/tmp/criu/dynacut"
    #: when to run the DynaLint image checks after a rewrite:
    #: "verify" (whenever the verifier policy is installed, the
    #: default), "always", or "off"
    lint_mode: str = "verify"
    #: roll back (instead of restoring) when the lint finds damage
    lint_strict: bool = False
    #: pipeline attempts per customize() transaction; transient faults
    #: retry up to this bound with capped exponential backoff
    max_attempts: int = 3
    #: reports of every session run through this instance
    history: list[RewriteReport] = field(default_factory=list)
    #: journal of the most recent customize() transaction
    last_journal: TxJournal | None = None
    #: blocks actually patched per (root pid, feature name), so a later
    #: enable_feature restores exactly what disable_feature removed
    _disabled: dict[tuple[int, str], list[BlockRecord]] = field(
        default_factory=dict
    )
    #: blocks shelved (temporarily restored) per (root pid, feature
    #: name), keyed by block offset; the complement of ``_disabled``
    #: within the feature's committed removal set
    _shelved: dict[tuple[int, str], dict[int, ShelvedBlock]] = field(
        default_factory=dict
    )

    @property
    def pristine_dir(self) -> str:
        """Where the unmutated image copy lives during a transaction."""
        return f"{self.image_dir.rstrip('/')}/pristine"

    # ------------------------------------------------------------------
    # generic session

    def customize(
        self,
        root_pid: int,
        actions: Callable[[ImageRewriter], None],
        op: str = "customize",
    ) -> RewriteReport:
        """Checkpoint, apply ``actions`` to the image, restore — as a
        journaled transaction.

        The session either *commits* (the rewritten tree is live, the
        report says how much it cost) or *rolls back*: on any failure —
        a fault in the dump, the rewrite, the image save, a strict-lint
        rejection, or the restore itself — the pristine checkpoint is
        restored, the service keeps running unmodified, and
        :class:`CustomizationAborted` is raised with the rolled-back
        report attached.  Transient faults are retried up to
        :attr:`max_attempts` times with capped deterministic backoff
        charged to the virtual clock.
        """
        journal = TxJournal(self.kernel.fs, self.image_dir, op=op)
        self.last_journal = journal
        failures = 0
        with telemetry.span(
            "customize", clock=lambda: self.kernel.clock_ns, pid=root_pid
        ):
            while True:
                attempt = failures + 1
                state = _TxState()
                journal.record(PHASE_BEGIN, attempt, self.kernel.clock_ns)
                try:
                    report = self._run_attempt(
                        root_pid, actions, journal, attempt, state
                    )
                except TransientFault as fault:
                    failures += 1
                    self._rollback(journal, attempt, state, note=str(fault))
                    if failures >= self.max_attempts:
                        self._abort(
                            journal, attempt, state, fault,
                            f"transient-fault retry budget exhausted "
                            f"({self.max_attempts} attempts)",
                        )
                    backoff = self.cost_model.retry_backoff(failures)
                    self.kernel.clock_ns += backoff
                    journal.record(
                        PHASE_RETRYING, attempt, self.kernel.clock_ns,
                        note=f"backoff={backoff}ns",
                    )
                    continue
                except Exception as exc:
                    # permanent faults, rewrite/lint/image errors: not
                    # retryable — restore the pristine tree and abort
                    self._rollback(journal, attempt, state, note=str(exc))
                    self._abort(
                        journal, attempt, state, exc, "permanent failure"
                    )
                report.attempts = attempt
                journal.record(PHASE_COMMITTED, attempt, self.kernel.clock_ns)
                self.history.append(report)
                self._publish_report(report)
                return report

    def _run_attempt(
        self,
        root_pid: int,
        actions: Callable[[ImageRewriter], None],
        journal: TxJournal,
        attempt: int,
        state: _TxState,
    ) -> RewriteReport:
        kernel = self.kernel
        now = lambda: kernel.clock_ns  # noqa: E731 — the span clock
        clock = kernel.clock_ns
        with telemetry.span("customize.checkpoint", clock=now, attempt=attempt):
            checkpoint = checkpoint_tree(
                kernel,
                root_pid,
                image_dir=self.image_dir,
                dump_exec_pages=True,
                cost_model=self.cost_model,
            )
        # from here on the original tree is gone: every failure path
        # below must restore the pristine copy to keep the service up
        state.tree_down = True
        state.pristine = copy.deepcopy(checkpoint)
        checkpoint_ns = kernel.clock_ns - clock
        journal.record(PHASE_CHECKPOINTED, attempt, kernel.clock_ns)

        state.pristine.save(kernel.fs, self.pristine_dir)
        journal.record(PHASE_PRISTINE_SAVED, attempt, kernel.clock_ns)

        rewriter = ImageRewriter(kernel, checkpoint, self.cost_model)
        with telemetry.span("customize.rewrite", clock=now, attempt=attempt):
            actions(rewriter)
        journal.record(PHASE_REWRITTEN, attempt, kernel.clock_ns)

        # overwrite the on-disk image files with the rewritten state, so
        # offline tooling (crit, dynalint) sees what will be restored;
        # the pristine copy saved above survives this
        with telemetry.span("customize.save", clock=now, attempt=attempt):
            checkpoint.save(kernel.fs, self.image_dir)
        journal.record(PHASE_SAVED, attempt, kernel.clock_ns)

        lint = None
        if self.lint_mode == "always" or (
            self.lint_mode == "verify"
            and POLICY_VERIFY in rewriter.policies_installed
        ):
            with telemetry.span("customize.lint", clock=now, attempt=attempt):
                lint = lint_checkpoint(kernel, checkpoint)
                faults.trip("lint.strict_reject")
                if self.lint_strict and not lint.ok:
                    raise RewriteError(
                        "dynalint rejected the rewritten image:\n"
                        + lint.summary()
                    )
            journal.record(PHASE_LINTED, attempt, kernel.clock_ns)

        clock = kernel.clock_ns
        with telemetry.span("customize.restore", clock=now, attempt=attempt):
            restored = restore_tree(kernel, checkpoint, self.cost_model)
        state.tree_down = False
        restore_ns = kernel.clock_ns - clock
        journal.record(PHASE_RESTORED, attempt, kernel.clock_ns)

        return RewriteReport(
            pids=[proc.pid for proc in restored],
            image_pages=checkpoint.total_pages(),
            image_bytes=checkpoint.total_bytes(),
            stats=rewriter.stats,
            checkpoint_ns=checkpoint_ns,
            restore_ns=restore_ns,
            lint=lint,
        )

    def _rollback(
        self, journal: TxJournal, attempt: int, state: _TxState, note: str = ""
    ) -> None:
        """Put the pristine tree back after a failed attempt."""
        if not state.tree_down:
            # the dump failed before destroying anything: checkpoint_tree
            # thawed the frozen tree, so the service never stopped
            journal.record(
                PHASE_ROLLED_BACK, attempt, self.kernel.clock_ns,
                note=f"aborted before mutation; {note}",
            )
            return
        assert state.pristine is not None
        failures = 0
        while True:
            try:
                restore_tree(self.kernel, state.pristine, self.cost_model)
                break
            except TransientFault as fault:
                failures += 1
                if failures >= self.max_attempts:
                    journal.record(
                        PHASE_ROLLED_BACK, attempt, self.kernel.clock_ns,
                        note=f"ROLLBACK FAILED: {fault}",
                    )
                    raise RollbackFailed(
                        f"pristine restore kept failing: {fault}"
                    ) from fault
                self.kernel.clock_ns += self.cost_model.retry_backoff(failures)
            except PermanentFault as fault:
                journal.record(
                    PHASE_ROLLED_BACK, attempt, self.kernel.clock_ns,
                    note=f"ROLLBACK FAILED: {fault}",
                )
                raise RollbackFailed(
                    f"pristine restore hit a permanent fault: {fault}"
                ) from fault
        state.tree_down = False
        # resurface the pristine images as the working set — modelled as
        # a local replay of the durable pristine/ copy (no new payload
        # I/O), hence shielded from injection
        with faults.shielded():
            state.pristine.save(self.kernel.fs, self.image_dir)
        journal.record(
            PHASE_ROLLED_BACK, attempt, self.kernel.clock_ns, note=note
        )

    def _abort(
        self,
        journal: TxJournal,
        attempt: int,
        state: _TxState,
        cause: Exception,
        why: str,
    ) -> None:
        """Record the rolled-back report and raise CustomizationAborted."""
        pristine = state.pristine
        report = RewriteReport(
            pids=list(pristine.pids) if pristine is not None else [],
            image_pages=pristine.total_pages() if pristine is not None else 0,
            image_bytes=pristine.total_bytes() if pristine is not None else 0,
            stats=RewriteStats(),
            outcome="rolled-back",
            attempts=attempt,
            rolled_back=True,
        )
        self.history.append(report)
        self._publish_report(report, why=why)
        raise CustomizationAborted(
            f"customize rolled back after {attempt} attempt(s) ({why}): "
            f"{cause}",
            report,
        ) from cause

    def _publish_report(self, report: RewriteReport, why: str = "") -> None:
        """Push one session's outcome into the telemetry substrate."""
        now = self.kernel.clock_ns
        # credit the transaction's cost to the request currently being
        # traced (the one stalled behind this rewrite), committed or not
        # — a rolled-back attempt still stalled the service
        trace.note_rewrite(report.total_ns)
        telemetry.count("customize_total", outcome=report.outcome)
        telemetry.count("customize_attempts_total", report.attempts)
        telemetry.emit(
            "rewrite", "report", clock_ns=now,
            outcome=report.outcome, attempts=report.attempts, why=why,
            checkpoint_ns=report.checkpoint_ns, restore_ns=report.restore_ns,
            patch_ns=report.stats.patch_ns, inject_ns=report.stats.inject_ns,
            unmap_ns=report.stats.unmap_ns, total_ns=report.total_ns,
            blocks_patched=report.stats.blocks_patched,
            blocks_restored=report.stats.blocks_restored,
            bytes_wiped=report.stats.bytes_wiped,
            image_pages=report.image_pages, image_bytes=report.image_bytes,
        )
        if report.outcome != "committed":
            return
        telemetry.observe("customize_checkpoint_ns", report.checkpoint_ns)
        telemetry.observe("customize_restore_ns", report.restore_ns)
        telemetry.observe("customize_patch_ns", report.stats.patch_ns)
        telemetry.observe("customize_total_ns", report.total_ns)
        telemetry.count("blocks_patched_total", report.stats.blocks_patched)
        telemetry.count("blocks_restored_total", report.stats.blocks_restored)
        telemetry.count("bytes_wiped_total", report.stats.bytes_wiped)
        telemetry.sample("rewrite_cost_ns", now, report.total_ns)

    # ------------------------------------------------------------------
    # feature customization

    def _blocks_for_mode(
        self, feature: FeatureBlocks, mode: BlockMode
    ) -> list[BlockRecord]:
        if not feature.blocks:
            raise RewriteError(f"feature {feature.name!r} has no blocks")
        if mode is BlockMode.ENTRY:
            return [feature.entry]
        return list(feature.blocks)

    def refine_feature(
        self,
        feature: FeatureBlocks,
        blocks: list[BlockRecord] | None = None,
        dispatcher_symbol: str | None = None,
        prove: bool = False,
    ) -> RemovalClassification:
        """Statically classify a feature's removal set (DynaLint).

        ``dispatcher_symbol`` names any symbol inside the application's
        dispatch function; the feature's unique blocks in that function
        (its case arms) become the designated trap entries.  Without
        it, the feature's first executed block is the only entry.

        ``prove=True`` runs the DynaFlow value-set analysis first and
        classifies against the *resolved* indirect-branch targets
        instead of assuming every removed block is reachable through
        them; suspects that only looked reachable through an indirect
        edge upgrade to provably-dead.  Falls back to the legacy
        verdicts (recorded in ``fallback_reason``) when the analysis
        finds a self-modifying-store hazard or cannot bound an
        indirect site.
        """
        binary = self._module_binary(feature.module)
        blocks = list(blocks) if blocks is not None else list(feature.blocks)
        entries: list[BlockRecord] = []
        if dispatcher_symbol is not None:
            dispatcher_fn = enclosing_function(
                binary, binary.symbol_address(dispatcher_symbol)
            )
            entries = [
                block for block in blocks
                if enclosing_function(binary, block.offset) == dispatcher_fn
            ]
        if not entries:
            entries = (
                [feature.entry] if feature.entry in blocks else blocks[:1]
            )
        return refine_removal_set(binary, blocks, entries, prove=prove)

    def _check_redirect_liveness(
        self, binary: SelfImage, symbol: str, target_offset: int
    ) -> None:
        """DynaFlow sanity check on a §3.2.2 redirect target (non-fatal).

        The redirected trap re-enters at ``target_offset`` with
        whatever registers the dispatcher arm held, plus the saved-IP
        fixup — only ``sp``/``fp`` and the callee-saved set are
        guaranteed meaningful.  The liveness client computes which
        registers the handler *reads before writing*; any live-in
        argument/scratch register means the handler consumes dispatcher
        state it may not hold at the trap site.  Real targets (error
        responders taking the connection from their frame) come out
        clean; the check warns through telemetry rather than failing,
        because the value may still be intentional.
        """
        try:
            live = live_in_registers(binary, target_offset)
        except Exception:
            # liveness is advisory; an undecodable target is caught by
            # the rewriter itself
            return
        risky = sorted(live - {7, 8, 9, 10, 14, 15})
        telemetry.count("dynaflow_redirect_checks")
        if risky:
            telemetry.count("dynaflow_redirect_live_in_flags")
            telemetry.emit(
                "analysis", "redirect-live-in",
                symbol=symbol, offset=target_offset,
                registers=",".join(f"r{r}" for r in risky),
            )

    def disable_feature(
        self,
        root_pid: int,
        feature: FeatureBlocks,
        policy: TrapPolicy = TrapPolicy.TERMINATE,
        mode: BlockMode = BlockMode.ENTRY,
        redirect_symbol: str | None = None,
        refine: bool = False,
        dispatcher_symbol: str | None = None,
        prove: bool = False,
    ) -> RewriteReport:
        """Block ``feature`` in the running process tree.

        With :attr:`TrapPolicy.REDIRECT`, ``redirect_symbol`` names the
        application's error-handler entry (must live in the same
        function as the dispatcher, per §3.2.2); inadvertent access
        then produces the app's error response instead of a crash.

        ``refine=True`` runs the DynaLint static classifier over the
        removal set first: suspect blocks (still reachable from kept
        code) are dropped instead of being discovered by runtime traps,
        provably-dead blocks may be wiped outright, and only the
        designated entries (see :meth:`refine_feature`) keep traps.
        ``prove=True`` additionally runs the DynaFlow dataflow proofs
        (see :meth:`refine_feature`); under :attr:`TrapPolicy.VERIFY`
        with :attr:`BlockMode.WIPE` it also restricts outright wipes to
        blocks the liveness client proved no healed trap block can fall
        into — the rest of the dead set is trap-guarded instead.
        """
        module = feature.module
        binary = self._module_binary(module)
        refinement: RemovalClassification | None = None

        if policy is TrapPolicy.REDIRECT:
            if refine:
                raise RewriteError(
                    "the redirect policy already performs its own §3.2.2 "
                    "dispatcher-arm selection; refine does not compose"
                )
            if redirect_symbol is None:
                raise RewriteError("redirect policy needs redirect_symbol")
            target_offset = binary.symbol_address(redirect_symbol)
            self._check_redirect_liveness(
                binary, redirect_symbol, target_offset
            )
            # The saved-IP redirect is only sound when the trap fires in
            # the error handler's own frame (§3.2.2), so the blocking
            # point is the feature's first unique block *inside the
            # dispatcher function*, i.e. the feature's case arm.
            dispatcher_blocks = [
                block for block in feature.blocks
                if enclosing_function(binary, block.offset)
                == enclosing_function(binary, target_offset)
            ]
            if not dispatcher_blocks:
                raise RewriteError(
                    f"feature {feature.name!r} has no unique block in the "
                    f"function containing {redirect_symbol!r}; the redirect "
                    "policy needs a dispatcher arm to block (§3.2.2)"
                )
            if mode is BlockMode.ENTRY:
                blocks = [dispatcher_blocks[0]]
            else:
                # patch the dispatcher arms plus all blocks of functions
                # *fully owned* by the feature (their entry block is
                # feature-unique, so wanted traffic never enters them:
                # the per-feature handlers).  Unique blocks inside mixed
                # functions (method-id parsing arms etc.) stay executable
                # — they run for wanted requests too, in frames the
                # redirect cannot repair.
                unique_starts = {b.offset for b in feature.blocks}
                owned = {
                    name for name, sym in binary.functions().items()
                    if sym.vaddr in unique_starts
                }
                blocks = list(dispatcher_blocks) + [
                    b for b in feature.blocks
                    if enclosing_function(binary, b.offset) in owned
                ]
            redirect_blocks = dispatcher_blocks
        else:
            blocks = self._blocks_for_mode(feature, mode)
            redirect_blocks = []
            if refine or prove:
                refinement = self.refine_feature(
                    feature, blocks, dispatcher_symbol, prove=prove
                )
                blocks = refinement.removable

        # Under the verifier a trapped block can heal and run its tail
        # into an adjacent wiped block.  With a dataflow proof on hand,
        # wipe only the blocks the liveness client showed are not
        # downstream of any trap entry; the rest stay trap-guarded.
        wipe_guard: list[BlockRecord] = []
        if (
            refinement is not None
            and refinement.mode == "prove"
            and mode is BlockMode.WIPE
            and policy is TrapPolicy.VERIFY
        ):
            safe = set(refinement.wipe_safe_records())
            wipe_guard = [
                b for b in refinement.provably_dead if b not in safe
            ]
            telemetry.count("dynaflow_wipe_guarded", len(wipe_guard))

        def actions(rewriter: ImageRewriter) -> None:
            if mode is BlockMode.WIPE:
                if refinement is not None:
                    # wipe only what the analysis proved dead; the trap
                    # entries guard it and keep their original tails
                    guarded = set(wipe_guard)
                    rewriter.wipe_blocks(
                        module,
                        [
                            b for b in refinement.provably_dead
                            if b not in guarded
                        ],
                    )
                    trapped = list(refinement.trap_required) + wipe_guard
                    if trapped:
                        rewriter.block_entry_int3(module, trapped)
                else:
                    rewriter.wipe_blocks(module, blocks)
            else:
                rewriter.block_entry_int3(module, blocks)
            if policy is TrapPolicy.REDIRECT:
                # traps outside the dispatcher frame (direct jumps into
                # deeper feature code) have no table entry and terminate
                target = self._symbol_abs(rewriter, module, redirect_symbol)
                entries = [
                    (self._block_abs(rewriter, module, block), target)
                    for block in redirect_blocks
                    if block in blocks or mode is BlockMode.ENTRY
                ]
                rewriter.install_trap_handler(POLICY_REDIRECT, entries)
                return
            if policy is TrapPolicy.VERIFY:
                # with a refined WIPE only the trap entries can heal; a
                # wiped block's tail is gone, so its entry stays trapped
                healable = (
                    list(refinement.trap_required) + wipe_guard
                    if refinement is not None and mode is BlockMode.WIPE
                    else blocks
                )
                orig = [
                    (
                        self._block_abs(rewriter, module, block),
                        binary.read_bytes(block.offset, 1)[0],
                    )
                    for block in healable
                ]
                rewriter.install_trap_handler(POLICY_VERIFY, orig_entries=orig)
            # TERMINATE: no handler — the default SIGTRAP disposition kills

        report = self.customize(root_pid, actions)
        report.refinement = refinement
        self._disabled[(root_pid, feature.name)] = list(blocks)
        return report

    def enable_feature(
        self,
        root_pid: int,
        feature: FeatureBlocks,
        mode: BlockMode = BlockMode.ENTRY,
    ) -> RewriteReport:
        """Restore a previously blocked feature's original bytes.

        Restores exactly the blocks the matching :meth:`disable_feature`
        session patched when one is on record (minus any blocks already
        shelved back into service); otherwise falls back to the
        mode-derived selection.
        """
        recorded = self._disabled.get((root_pid, feature.name))
        blocks = (
            recorded if recorded is not None
            else self._blocks_for_mode(feature, mode)
        )

        def actions(rewriter: ImageRewriter) -> None:
            rewriter.restore_blocks(feature.module, blocks)

        # drop the disabled record only once the transaction commits: an
        # aborted re-enable leaves the feature blocked, and the record
        # must survive for the retry
        report = self.customize(root_pid, actions)
        self._disabled.pop((root_pid, feature.name), None)
        self._shelved.pop((root_pid, feature.name), None)
        return report

    # ------------------------------------------------------------------
    # DynaShelve: block-granular partial re-enable with decay

    def reenable_blocks(
        self,
        root_pid: int,
        feature: FeatureBlocks,
        offsets: list[int],
        reset_log: bool = False,
    ) -> RewriteReport | None:
        """Shelve: restore only the given blocks of a disabled feature.

        The graceful alternative to :meth:`enable_feature` when live
        traffic traps on part of a removal set: the trapping blocks are
        durably restored through the journaled transaction path
        (``op=shelve`` in the journal) while the rest of the feature
        stays patched.  Shelved blocks are timestamped so
        :meth:`decay_shelved` can re-remove the ones that go cold.

        Offsets already shelved are no-ops; when *every* requested
        offset is already shelved the call returns ``None`` without
        opening a transaction, making re-shelving idempotent.  Offsets
        that belong to neither the patched set nor the shelf raise
        :class:`RewriteError` — they are not this feature's blocks.

        ``reset_log=True`` additionally zeroes the verifier trap log in
        the rewritten image, marking the shelved traps as consumed so
        the next drift scan starts clean.
        """
        key = (root_pid, feature.name)
        recorded = self._disabled.get(key)
        if recorded is None:
            raise RewriteError(
                f"feature {feature.name!r} is not disabled on pid {root_pid}; "
                "nothing to shelve"
            )
        shelf = self._shelved.get(key, {})
        wanted = set(offsets)
        known = {block.offset for block in recorded}
        unknown = wanted - known - set(shelf)
        if unknown:
            raise RewriteError(
                f"offsets {sorted(unknown)} are not part of feature "
                f"{feature.name!r}'s removal set"
            )
        targets = [block for block in recorded if block.offset in wanted]
        if not targets:
            return None  # everything requested is already shelved

        def actions(rewriter: ImageRewriter) -> None:
            rewriter.restore_blocks(feature.module, targets)
            if reset_log:
                rewriter.reset_trap_log()

        report = self.customize(root_pid, actions, op="shelve")
        # mutate the records only after the transaction commits: an
        # aborted shelve leaves the blocks patched and on the record
        now = self.kernel.clock_ns
        shelf = self._shelved.setdefault(key, {})
        for block in targets:
            shelf[block.offset] = ShelvedBlock(block, now)
        self._disabled[key] = [
            block for block in recorded if block.offset not in wanted
        ]
        telemetry.count("shelved_blocks_total", len(targets))
        telemetry.emit(
            "shelve", "shelved", clock_ns=now, pid=root_pid,
            feature=feature.name, blocks=len(targets),
            bytes=sum(block.size for block in targets),
        )
        return report

    def decay_shelved(
        self,
        root_pid: int,
        feature: FeatureBlocks,
        decay_ns: int,
    ) -> list[BlockRecord]:
        """Re-remove shelved blocks that stayed cold for ``decay_ns``.

        Entry bytes of every cold shelved block are re-patched with
        ``int3`` through the transactional path (``op=decay``); the
        trap handler's tables are untouched — original-byte entries
        written by the disabling session remain valid, so a decayed
        block heals again if traffic returns.  Returns the re-removed
        blocks (empty, with no transaction opened, when nothing is
        cold).
        """
        key = (root_pid, feature.name)
        cold = [
            shelved.block
            for shelved in self._shelved.get(key, {}).values()
            if self.kernel.clock_ns - shelved.shelved_ns >= decay_ns
        ]
        if not cold:
            return []
        cold.sort(key=lambda block: block.offset)

        def actions(rewriter: ImageRewriter) -> None:
            rewriter.block_entry_int3(feature.module, cold)

        self.customize(root_pid, actions, op="decay")
        shelf = self._shelved[key]
        for block in cold:
            del shelf[block.offset]
        recorded = self._disabled.setdefault(key, [])
        recorded.extend(cold)
        recorded.sort(key=lambda block: block.offset)
        now = self.kernel.clock_ns
        telemetry.count("decayed_blocks_total", len(cold))
        telemetry.emit(
            "shelve", "decayed", clock_ns=now, pid=root_pid,
            feature=feature.name, blocks=len(cold),
            bytes=sum(block.size for block in cold),
        )
        return cold

    def shelved_blocks(
        self, root_pid: int, feature_name: str
    ) -> list[ShelvedBlock]:
        """Blocks of a feature currently shelved (restored, decaying)."""
        shelf = self._shelved.get((root_pid, feature_name), {})
        return sorted(shelf.values(), key=lambda s: s.block.offset)

    def shelved_offsets(self, root_pid: int, feature_name: str) -> list[int]:
        return sorted(self._shelved.get((root_pid, feature_name), {}))

    # ------------------------------------------------------------------
    # init-code removal

    def remove_init_code(
        self,
        root_pid: int,
        module: str,
        blocks: list[BlockRecord],
        wipe: bool = True,
        verify: bool = False,
        refine: bool = False,
        prove: bool = False,
    ) -> RewriteReport:
        """Remove initialization-only blocks from the running tree.

        ``wipe=True`` (the paper's default for init code) overwrites
        every instruction; ``verify=True`` instead patches entry bytes
        and installs the verifier so misclassified blocks self-heal.
        ``refine=True`` wipes only the statically provable interior of
        the removal set and leaves a trap frontier where kept code
        borders it (the auto-frontier mode of the DynaLint classifier);
        ``prove=True`` upgrades the classification with the DynaFlow
        dataflow proofs (resolved indirect targets, liveness).
        """
        binary = self._module_binary(module)
        refinement: RemovalClassification | None = None
        if refine or prove:
            refinement = refine_removal_set(binary, blocks, prove=prove)

        def actions(rewriter: ImageRewriter) -> None:
            patchable = refinement.removable if refinement else blocks
            if verify:
                rewriter.block_entry_int3(module, patchable)
                orig = [
                    (
                        self._block_abs(rewriter, module, block),
                        binary.read_bytes(block.offset, 1)[0],
                    )
                    for block in patchable
                ]
                rewriter.install_trap_handler(POLICY_VERIFY, orig_entries=orig)
            elif wipe:
                if refinement is not None:
                    rewriter.wipe_blocks(module, refinement.provably_dead)
                    if refinement.trap_required:
                        rewriter.block_entry_int3(
                            module, refinement.trap_required
                        )
                else:
                    rewriter.wipe_blocks(module, blocks)
            else:
                rewriter.block_entry_int3(module, patchable)

        report = self.customize(root_pid, actions)
        report.refinement = refinement
        return report

    # ------------------------------------------------------------------
    # live re-randomization (§5 direction)

    def rerandomize_library(
        self, root_pid: int, module: str = "libc.so",
        new_base: int | None = None,
    ) -> RewriteReport:
        """Move ``module`` to a new base in the live process tree.

        Leaked code addresses from before the rewrite stop working; the
        process keeps running (registers, GOT slots, sigactions, and
        stack pointers into the moved range are rebased in the image).
        """
        def actions(rewriter: ImageRewriter) -> None:
            rewriter.rerandomize_library(module, new_base)

        return self.customize(root_pid, actions)

    # ------------------------------------------------------------------
    # administration queries

    def disabled_features(self, root_pid: int) -> list[str]:
        """Names of features currently disabled on ``root_pid``'s tree."""
        return sorted(
            name for pid, name in self._disabled if pid == root_pid
        )

    def disabled_blocks(self, root_pid: int, feature_name: str) -> list[BlockRecord]:
        """The blocks a committed :meth:`disable_feature` actually patched.

        The active removal set for drift detection: a runtime trap at
        one of these blocks means live traffic is reaching code this
        engine removed.  Empty when the feature is not disabled.
        """
        return list(self._disabled.get((root_pid, feature_name), ()))

    def status(self, root_pid: int) -> dict[str, object]:
        """Operator overview: live pids, disabled features, filter state."""
        proc = self.kernel.processes.get(root_pid)
        tree = [
            p.pid for p in self.kernel.processes.values()
            if p.alive and (p.pid == root_pid or p.ppid == root_pid)
        ]
        return {
            "root_pid": root_pid,
            "alive": proc is not None and proc.alive,
            "tree_pids": sorted(tree),
            "disabled_features": self.disabled_features(root_pid),
            "shelved_blocks": {
                name: len(shelf)
                for (pid, name), shelf in sorted(self._shelved.items())
                if pid == root_pid and shelf
            },
            "syscall_filter": (
                sorted(proc.syscall_filter)
                if proc is not None and proc.syscall_filter is not None
                else None
            ),
            "rewrites": len(self.history),
        }

    # ------------------------------------------------------------------
    # syscall specialization (§5 seccomp direction)

    def restrict_syscalls(
        self, root_pid: int, allowed: set[int] | None
    ) -> RewriteReport:
        """Install (``allowed`` set) or lift (``None``) a syscall filter.

        The dynamic counterpart of temporal syscall specialization: the
        filter is written into the core images and enforced after
        restore; calling again with ``None`` removes it — something a
        statically installed seccomp filter cannot do.
        """
        def actions(rewriter: ImageRewriter) -> None:
            rewriter.set_syscall_filter(allowed)

        return self.customize(root_pid, actions)

    # ------------------------------------------------------------------
    # helpers

    def _check_same_function(
        self, binary: SelfImage, trap_offset: int, target_offset: int
    ) -> None:
        """Enforce §3.2.2: redirect target and trap must share a function.

        The redirect policy rewrites the saved instruction pointer
        without touching the stack, so it is only sound when the error
        handler runs in the frame the trap interrupted.
        """
        trap_fn = enclosing_function(binary, trap_offset)
        target_fn = enclosing_function(binary, target_offset)
        if trap_fn is None or trap_fn != target_fn:
            raise RewriteError(
                f"redirect target at {target_offset:#x} (function "
                f"{target_fn!r}) is not in the same function as the trap "
                f"site {trap_offset:#x} (function {trap_fn!r}); the saved-IP "
                "redirect policy requires both in one frame (§3.2.2). "
                "Profile the wanted features with more inputs so the "
                "feature's first unique block lands in the dispatcher."
            )

    def _module_binary(self, module: str) -> SelfImage:
        binary = self.kernel.binaries.get(module)
        if binary is None:
            raise RewriteError(f"binary {module!r} not registered")
        return binary

    def _symbol_abs(
        self, rewriter: ImageRewriter, module: str, symbol: str
    ) -> int:
        binary = self._module_binary(module)
        __, base = rewriter.images_mapping(module)[0]
        return base + binary.symbol_address(symbol)

    def _block_abs(
        self, rewriter: ImageRewriter, module: str, block: BlockRecord
    ) -> int:
        __, base = rewriter.images_mapping(module)[0]
        return base + block.offset

    # ------------------------------------------------------------------

    def restored_process(self, pid: int) -> Process:
        proc = self.kernel.processes.get(pid)
        if proc is None or not proc.alive:
            raise RewriteError(f"pid {pid} is not alive after rewriting")
        return proc
