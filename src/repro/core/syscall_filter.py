"""Temporal syscall specialization (the paper's §5 seccomp direction).

Ghavamnia et al. (USENIX Security '20) shrink a server's syscall set
after initialization with a static analysis + seccomp filter; the
DynaCut paper observes that process rewriting can install and *remove*
such filters dynamically.  This module implements the trace-driven
variant: the phase-split coverage traces already record which syscalls
each phase used, so the post-init allow-list is simply the serving
phase's syscall set plus a small always-needed core.

Combined with :meth:`ImageRewriter.set_syscall_filter`, this gives the
full dynamic workflow: profile → rewrite (filter installed) → restore;
and later rewrite again with ``None`` to lift the filter.
"""

from __future__ import annotations

from ..kernel.syscalls import Sys
from ..tracing.drcov import CoverageTrace

#: syscalls every process needs regardless of profile: clean exit and
#: signal return (the trap handler must be able to run), plus close —
#: connection teardown may not appear in a short profiling window
ALWAYS_ALLOWED: frozenset[int] = frozenset(
    {int(Sys.EXIT), int(Sys.SIGRETURN), int(Sys.CLOSE)}
)

#: syscalls commonly abused for post-exploitation; reported by
#: :func:`specialization_report` when a profile still needs them
SENSITIVE: frozenset[int] = frozenset(
    {int(Sys.FORK), int(Sys.EXECVE), int(Sys.KILL), int(Sys.MPROTECT),
     int(Sys.MMAP)}
)


def serving_allowlist(
    serving_trace: CoverageTrace,
    extra: set[int] | None = None,
) -> frozenset[int]:
    """The post-initialization syscall allow-list for a profiled server."""
    allowed = set(serving_trace.syscalls) | set(ALWAYS_ALLOWED)
    if extra:
        allowed |= extra
    return frozenset(allowed)


def dropped_syscalls(
    init_trace: CoverageTrace,
    serving_trace: CoverageTrace,
) -> frozenset[int]:
    """Syscalls used during init but never while serving (the win)."""
    return frozenset(init_trace.syscalls - serving_trace.syscalls)


def specialization_report(
    init_trace: CoverageTrace,
    serving_trace: CoverageTrace,
) -> dict[str, object]:
    """Human-readable summary of what a post-init filter removes."""
    dropped = dropped_syscalls(init_trace, serving_trace)
    allowed = serving_allowlist(serving_trace)

    def names(numbers) -> list[str]:
        out = []
        for number in sorted(numbers):
            try:
                out.append(Sys(number).name)
            except ValueError:
                out.append(str(number))
        return out

    return {
        "init_syscalls": names(init_trace.syscalls),
        "serving_syscalls": names(serving_trace.syscalls),
        "dropped": names(dropped),
        "dropped_sensitive": names(dropped & SENSITIVE),
        "allowed": names(allowed),
    }
