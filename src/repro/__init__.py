"""DynaCut reproduction: dynamic and adaptive program customization.

The package is layered bottom-up:

* :mod:`repro.isa`, :mod:`repro.binfmt`, :mod:`repro.minic` — the
  toolchain (VM64 ISA, SELF binaries, the MiniC compiler);
* :mod:`repro.kernel` — the simulated OS guest programs run on;
* :mod:`repro.apps` — guest applications (web servers, key-value
  store, SPEC-like suite) plus the guest libc;
* :mod:`repro.tracing`, :mod:`repro.analysis`, :mod:`repro.criu` —
  the drcov tracer, static CFG recovery, and checkpoint/restore;
* :mod:`repro.core` — DynaCut itself: tracediff, init-phase
  identification, the process rewriter, trap policies, baselines;
* :mod:`repro.workloads`, :mod:`repro.attacks` — evaluation drivers.

Quickstart::

    from repro import Kernel, DynaCut, TraceDiff, TrapPolicy
    from repro.apps import stage_lighttpd

    kernel = Kernel()
    server = stage_lighttpd(kernel)
    ...  # trace wanted/undesired requests (see examples/quickstart.py)
    DynaCut(kernel).disable_feature(server.pid, feature,
                                    policy=TrapPolicy.REDIRECT,
                                    redirect_symbol="http_forbidden_entry")
"""

from .kernel import Kernel, KernelConfig, Signal
from .tracing import BlockTracer, CoverageTrace, merge_traces
from .core import (
    BlockMode,
    CoverageGraph,
    CustomizationAborted,
    DynaCut,
    FeatureBlocks,
    ImageRewriter,
    TraceDiff,
    TrapPolicy,
    chisel_debloat,
    init_only_blocks,
    razor_debloat,
    read_verifier_log,
    tracediff,
)
from .criu import checkpoint_tree, restore_tree

__version__ = "1.0.0"

__all__ = [
    "BlockMode",
    "BlockTracer",
    "CoverageGraph",
    "CoverageTrace",
    "CustomizationAborted",
    "DynaCut",
    "FeatureBlocks",
    "ImageRewriter",
    "Kernel",
    "KernelConfig",
    "Signal",
    "TraceDiff",
    "TrapPolicy",
    "checkpoint_tree",
    "chisel_debloat",
    "init_only_blocks",
    "merge_traces",
    "razor_debloat",
    "read_verifier_log",
    "restore_tree",
    "tracediff",
    "__version__",
]
