"""Behavioural tests for the three guest servers."""

from __future__ import annotations

import pytest

from repro.apps import REDIS_PORT, nginx_worker
from repro.kernel import Signal
from repro.workloads import RedisClient


class TestMiniredis:
    def test_banner_and_ready_line(self, redis_server):
        __, proc, __ = redis_server
        out = proc.stdout_text()
        assert "miniredis pid=" in out
        assert "Ready to accept connections" in out

    def test_config_respected(self, redis_server):
        kernel, proc, client = redis_server
        assert client.command("CONFIG GET maxmemory") == ":1048576"
        assert client.command("CONFIG GET port") == ":6379"
        assert client.command("CONFIG GET loglevel") == "$notice"

    def test_string_commands(self, redis_server):
        __, __, client = redis_server
        assert client.set("s", "abc")
        assert client.command("APPEND s def") == ":6"
        assert client.command("STRLEN s") == ":6"
        assert client.command("GETRANGE s 1 3") == "$bcd"
        assert client.command("SETRANGE s 0 X") == ":1"
        assert client.get("s") == "Xbcdef"

    def test_counters(self, redis_server):
        __, __, client = redis_server
        assert client.incr("n") == 1
        assert client.incr("n") == 2
        assert client.command("DECR n") == ":1"

    def test_key_management(self, redis_server):
        __, __, client = redis_server
        client.set("a", "1")
        client.set("b", "2")
        assert client.dbsize() == 2
        assert client.command("EXISTS a") == ":1"
        assert client.delete("a") == 1
        assert client.command("EXISTS a") == ":0"
        assert client.command("FLUSHALL") == "+OK"
        assert client.dbsize() == 0

    def test_echo_and_unknown(self, redis_server):
        __, __, client = redis_server
        assert client.command("ECHO hello") == "$hello"
        assert client.command("BOGUS").startswith("-ERR unknown")

    def test_get_missing_is_nil(self, redis_server):
        __, __, client = redis_server
        assert client.get("missing") is None

    def test_multiple_clients(self, redis_server):
        kernel, __, client = redis_server
        other = RedisClient(kernel, REDIS_PORT)
        client.set("shared", "1")
        assert other.get("shared") == "1"
        other.set("shared", "2")
        assert client.get("shared") == "2"

    def test_pipelined_commands_one_packet(self, redis_server):
        kernel, __, __ = redis_server
        sock = kernel.connect(REDIS_PORT)
        sock.send("SET p 9\nGET p\nPING\n")
        kernel.run_until(
            lambda: sock.endpoint.recv_buffer.count(b"\n") >= 3,
            max_instructions=3_000_000,
        )
        assert sock.recv_available() == b"+OK\n$9\n+PONG\n"

    def test_wrong_arity_reports_error(self, redis_server):
        __, __, client = redis_server
        assert client.command("SET onlykey").startswith("-ERR")
        assert client.command("GET").startswith("-ERR")

    def test_value_too_large_rejected(self, redis_server):
        __, __, client = redis_server
        assert client.command("SET big " + "x" * 300).startswith("-ERR")

    def test_shutdown_command(self, redis_server):
        kernel, proc, client = redis_server
        client.command("SHUTDOWN")
        kernel.run_until(lambda: not proc.alive)
        assert proc.exit_code == 0


class TestMinilight:
    def test_static_get_and_head(self, lighttpd_server):
        __, __, client = lighttpd_server
        response = client.get("/")
        assert response.status == 200
        assert response.body == b"<h1>it works</h1>"
        assert int(response.headers["Content-Length"]) == len(response.body)
        assert client.head("/").body == b""

    def test_404_for_missing(self, lighttpd_server):
        __, __, client = lighttpd_server
        assert client.get("/nope.html").status == 404

    def test_webdav_put_get_delete_cycle(self, lighttpd_server):
        kernel, __, client = lighttpd_server
        assert client.put("/up.txt", "uploaded").status == 201
        assert kernel.fs.read_file("/var/www/up.txt") == b"uploaded"
        assert client.get("/up.txt").body == b"uploaded"
        assert client.delete("/up.txt").status == 204
        assert client.get("/up.txt").status == 404

    def test_propfind_and_mkcol(self, lighttpd_server):
        __, __, client = lighttpd_server
        assert client.propfind("/").status == 207
        assert client.mkcol("/dir").status == 201

    def test_options_lists_methods(self, lighttpd_server):
        __, __, client = lighttpd_server
        response = client.options()
        assert b"PUT" in response.body and b"DELETE" in response.body

    def test_post_echoes_body(self, lighttpd_server):
        __, __, client = lighttpd_server
        assert client.post("/echo", "payload").body == b"payload"

    def test_unknown_method_405(self, lighttpd_server):
        __, __, client = lighttpd_server
        assert client.request("FROB", "/").status == 405

    def test_malformed_request_400(self, lighttpd_server):
        kernel, __, client = lighttpd_server
        reply = client.raw_request("GARBAGE\r\n\r\n")
        assert b"400" in reply.split(b"\r\n")[0]

    def test_single_process_many_connections(self, lighttpd_server):
        kernel, proc, client = lighttpd_server
        socks = [kernel.connect(8080) for __ in range(3)]
        for index, sock in enumerate(socks):
            sock.send(f"GET / HTTP/1.0\r\nX-N: {index}\r\n\r\n")
        kernel.run_until(
            lambda: all(s.closed_by_peer for s in socks),
            max_instructions=6_000_000,
        )
        for sock in socks:
            assert b"200 OK" in sock.recv_available()
        assert proc.alive


class TestMininginx:
    def test_master_and_worker_processes(self, nginx_server):
        kernel, master, __ = nginx_server
        workers = [p for p in kernel.processes.values() if p.ppid == master.pid]
        assert len(workers) == 1
        assert workers[0].binary == master.binary

    def test_serves_content(self, nginx_server):
        __, __, client = nginx_server
        response = client.get("/")
        assert response.status == 200
        assert response.headers.get("Server") == "mininginx"

    def test_dav_methods_configured(self, nginx_server):
        kernel, __, client = nginx_server
        assert client.put("/f.txt", "x").status == 201
        assert client.delete("/f.txt").status == 204

    def test_worker_crash_respawned_by_master(self, nginx_server):
        kernel, master, client = nginx_server
        old_worker = nginx_worker(kernel, master)
        client.raw_request("GET /" + "A" * 400 + " HTTP/1.0\r\n\r\n")
        kernel.run_until(
            lambda: "respawned" in master.stdout_text(),
            max_instructions=5_000_000,
        )
        assert not old_worker.alive
        assert old_worker.term_signal in (Signal.SIGSEGV, Signal.SIGILL)
        new_worker = nginx_worker(kernel, master)
        assert new_worker.pid != old_worker.pid
        assert client.get("/").status == 200

    def test_worker_serves_sequentially(self, nginx_server):
        __, __, client = nginx_server
        for __ in range(3):
            assert client.get("/").status == 200
