"""Tests for the tracediff and crit command-line tools."""

from __future__ import annotations

import json

import pytest

from repro.criu.images import (
    CoreImage,
    MmImage,
    RegsImage,
    SigactionEntry,
    VmaEntry,
)
from repro.tools import crit_cli, tracediff_cli
from repro.tracing import BlockRecord, CoverageTrace, ModuleEntry


@pytest.fixture()
def trace_files(tmp_path):
    def write(name, records):
        trace = CoverageTrace(modules=[ModuleEntry("app", 0x400000, 0x500000)])
        for offset, size in records:
            trace.add(BlockRecord("app", offset, size))
        path = tmp_path / name
        path.write_text(trace.to_text())
        return str(path)

    wanted = write("wanted.cov", [(0x10, 4), (0x20, 8)])
    undesired = write("undesired.cov", [(0x10, 4), (0x40, 8), (0x50, 4)])
    return wanted, undesired


class TestTracediffCli:
    def test_prints_unique_blocks(self, trace_files, capsys):
        wanted, undesired = trace_files
        code = tracediff_cli.main(
            ["--module", "app", "--wanted", wanted, "--undesired", undesired]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 unique blocks" in out
        assert "0x40 8" in out
        assert "0x50 4" in out
        assert "0x10" not in out.splitlines()[-2:]

    def test_exit_code_one_when_nothing_unique(self, trace_files, capsys):
        wanted, __ = trace_files
        code = tracediff_cli.main(
            ["--module", "app", "--wanted", wanted, "--undesired", wanted]
        )
        assert code == 1


class TestCritCli:
    def _core_file(self, tmp_path):
        core = CoreImage(
            pid=9, ppid=1, binary="app",
            regs=RegsImage(list(range(16)), 0x400100, False, False),
            sigactions=[SigactionEntry(5, 0x7D0000, 0x7D0040)],
        )
        path = tmp_path / "core-9.img"
        path.write_bytes(core.to_bytes())
        return path

    def test_decode_encode_roundtrip(self, tmp_path, capsys):
        img = self._core_file(tmp_path)
        json_path = tmp_path / "core-9.json"
        crit_cli.main(["decode", str(img), "-o", str(json_path)])
        payload = json.loads(json_path.read_text())
        assert payload["pid"] == 9
        out_img = tmp_path / "out.img"
        crit_cli.main(["encode", str(json_path), "-o", str(out_img)])
        assert out_img.read_bytes() == img.read_bytes()

    def test_decode_to_stdout(self, tmp_path, capsys):
        img = self._core_file(tmp_path)
        crit_cli.main(["decode", str(img)])
        assert '"pid": 9' in capsys.readouterr().out

    def test_show_core(self, tmp_path, capsys):
        img = self._core_file(tmp_path)
        crit_cli.main(["show", str(img)])
        out = capsys.readouterr().out
        assert "pid=9" in out
        assert "sigaction 5" in out

    def test_show_mm(self, tmp_path, capsys):
        mm = MmImage([VmaEntry(0x400000, 0x401000, "r-x", "app", 0x400000)])
        path = tmp_path / "mm.img"
        path.write_bytes(mm.to_bytes())
        crit_cli.main(["show", str(path)])
        out = capsys.readouterr().out
        assert "1 VMAs" in out
        assert "r-x app" in out


class TestDynalintCli:
    def test_demo_export_lint_roundtrip(self, tmp_path, capsys):
        from repro.tools import dynalint_cli

        export = tmp_path / "img"
        code = dynalint_cli.main(["demo", "--export", str(export)])
        out = capsys.readouterr().out
        assert code == 0
        assert "dynalint: image clean" in out
        assert (export / "inventory.img").exists()

        code = dynalint_cli.main(["lint", str(export), "--app", "redis"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dynalint: image clean" in out

    def test_lint_flags_corrupted_export(self, tmp_path, capsys):
        from repro.tools import dynalint_cli

        export = tmp_path / "img"
        assert dynalint_cli.main(["demo", "--export", str(export)]) == 0
        capsys.readouterr()

        # scribble a non-int3 byte over the server's dumped text pages
        from repro.criu.images import CheckpointImage
        from repro.tools.dynalint_cli import _HostFS

        host = _HostFS(export)
        checkpoint = CheckpointImage.load(host, ".")
        image = checkpoint.root()
        text_vma = next(
            v for v in image.mm.vmas
            if v.file_path == "miniredis" and v.executable
        )
        pristine = image.read_memory(text_vma.start + 64, 1)[0]
        image.write_memory(
            text_vma.start + 64, bytes([pristine ^ 0x41])
        )
        checkpoint.save(host, ".")

        code = dynalint_cli.main(["lint", str(export), "--app", "redis"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DL" in out


class TestDynalintJson:
    def test_demo_json_is_deterministic_and_parseable(self, capsys):
        from repro.tools import dynalint_cli

        code = dynalint_cli.main(["demo", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["feature_blocks"] > 0
        assert payload["blocked_response"].startswith("-ERR")
        # stable key order: re-serializing sorted must reproduce stdout
        assert out.strip() == json.dumps(payload, indent=2, sort_keys=True)

    def test_lint_json_roundtrip(self, tmp_path, capsys):
        from repro.tools import dynalint_cli

        export = tmp_path / "img"
        assert dynalint_cli.main(["demo", "--export", str(export)]) == 0
        capsys.readouterr()
        code = dynalint_cli.main(
            ["lint", str(export), "--app", "redis", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["diagnostics"] == []

    def test_analyze_single_guest_writes_report(self, tmp_path, capsys):
        from repro.tools import dynalint_cli

        out_path = tmp_path / "refine.json"
        code = dynalint_cli.main([
            "analyze", "--guest", "605.mcf_s",
            "--out", str(out_path), "--json",
        ])
        stdout = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out_path.read_text())
        # stdout and --out carry the identical deterministic payload
        assert json.loads(stdout) == payload
        (row,) = payload["guests"]
        assert row["guest"] == "605.mcf_s"
        assert row["kind"] == "spec-init"
        assert row["mode"] == "prove"
        assert row["flow"]["resolved_external"] > 0
        assert payload["totals"]["provably_dead_restores"] == 0

    def test_analyze_table_output(self, capsys):
        from repro.tools import dynalint_cli

        code = dynalint_cli.main(["analyze", "--guest", "605.mcf_s"])
        out = capsys.readouterr().out
        assert code == 0
        assert "605.mcf_s" in out
        assert "mode=prove" in out
        assert "total suspects" in out


class TestFleetCli:
    def test_rollout_writes_clean_report(self, tmp_path, capsys):
        from repro.tools import fleet_cli

        out = tmp_path / "fleet.json"
        code = fleet_cli.main([
            "rollout", "--size", "2", "--max-unavailable", "1",
            "--duration", "20", "--probe-requests", "2",
            "--output", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["clean"]
        assert payload["rollout"]["state"] == "completed"
        assert payload["workload"]["failed_requests"] == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_rollout_with_fault_expects_abort(self, tmp_path, capsys):
        from repro.tools import fleet_cli

        out = tmp_path / "fleet.json"
        code = fleet_cli.main([
            "rollout", "--size", "2", "--duration", "20",
            "--probe-requests", "2",
            "--fault", "restore.memory:permanent",
            "--output", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["rollout"]["state"] == "aborted"
        assert payload["clean"]

    def test_drift_mode_reenables(self, tmp_path, capsys):
        from repro.tools import fleet_cli

        out = tmp_path / "fleet.json"
        code = fleet_cli.main([
            "drift", "--size", "2", "--duration", "8",
            "--probe-requests", "2", "--output", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["drift"]["triggered"]
        assert payload["feature_served_after_reenable"]

    def test_unknown_fault_site_rejected(self, tmp_path):
        from repro.tools import fleet_cli

        with pytest.raises(SystemExit):
            fleet_cli.main([
                "rollout", "--size", "2", "--fault", "bogus.site",
                "--output", str(tmp_path / "x.json"),
            ])


class TestShelveCli:
    # the full campaign runs as its own CI job (shelve-chaos); here we
    # only pin the argument contract
    def test_single_instance_fleet_rejected(self, capsys):
        from repro.tools import shelve_cli

        assert shelve_cli.main(["--size", "1"]) == 2
        assert "--size must be >= 2" in capsys.readouterr().out

    def test_put_mix_bounds_rejected(self, capsys):
        from repro.tools import shelve_cli

        assert shelve_cli.main(["--put-mix", "0"]) == 2
        assert shelve_cli.main(["--put-mix", "1.5"]) == 2

    def test_check_mode_collapses_to_one_seed(self):
        from repro.tools import shelve_cli

        parser = shelve_cli.build_parser()
        args = parser.parse_args(["--check"])
        assert args.check and args.seeds == 3  # collapsed inside main()
