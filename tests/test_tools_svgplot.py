"""Tests for the dependency-free SVG line charts."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.tools.svgplot import LineChart


def _chart() -> LineChart:
    chart = LineChart("Throughput", "time (s)", "req/s")
    chart.add_series("a", [(0, 10), (1, 12), (2, 8)])
    chart.add_series("b", [(0, 9), (1, 9), (2, 9)], dashed=True)
    return chart


class TestLineChart:
    def test_output_is_wellformed_xml(self):
        root = ET.fromstring(_chart().to_svg())
        assert root.tag.endswith("svg")

    def test_title_and_labels_present(self):
        svg = _chart().to_svg()
        assert "Throughput" in svg
        assert "time (s)" in svg
        assert "req/s" in svg

    def test_one_polyline_per_series(self):
        svg = _chart().to_svg()
        assert svg.count("<polyline") == 2

    def test_dashed_series_marked(self):
        svg = _chart().to_svg()
        assert "stroke-dasharray" in svg

    def test_legend_labels(self):
        svg = _chart().to_svg()
        assert ">a</text>" in svg
        assert ">b</text>" in svg

    def test_points_scaled_into_plot_area(self):
        chart = _chart()
        svg = chart.to_svg()
        root = ET.fromstring(svg)
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        for poly in root.iter(f"{ns}polyline"):
            for pair in poly.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= chart.width
                assert 0 <= y <= chart.height

    def test_flat_series_does_not_crash(self):
        chart = LineChart("flat", "x", "y")
        chart.add_series("only", [(0, 5), (1, 5)])
        assert "<polyline" in chart.to_svg()

    def test_empty_chart_renders(self):
        chart = LineChart("empty", "x", "y")
        ET.fromstring(chart.to_svg())

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        _chart().save(path)
        assert path.read_text().startswith("<svg")
