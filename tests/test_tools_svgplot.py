"""Tests for the dependency-free SVG charts."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.tools.svgplot import BarChart, LineChart


def _chart() -> LineChart:
    chart = LineChart("Throughput", "time (s)", "req/s")
    chart.add_series("a", [(0, 10), (1, 12), (2, 8)])
    chart.add_series("b", [(0, 9), (1, 9), (2, 9)], dashed=True)
    return chart


class TestLineChart:
    def test_output_is_wellformed_xml(self):
        root = ET.fromstring(_chart().to_svg())
        assert root.tag.endswith("svg")

    def test_title_and_labels_present(self):
        svg = _chart().to_svg()
        assert "Throughput" in svg
        assert "time (s)" in svg
        assert "req/s" in svg

    def test_one_polyline_per_series(self):
        svg = _chart().to_svg()
        assert svg.count("<polyline") == 2

    def test_dashed_series_marked(self):
        svg = _chart().to_svg()
        assert "stroke-dasharray" in svg

    def test_legend_labels(self):
        svg = _chart().to_svg()
        assert ">a</text>" in svg
        assert ">b</text>" in svg

    def test_points_scaled_into_plot_area(self):
        chart = _chart()
        svg = chart.to_svg()
        root = ET.fromstring(svg)
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        for poly in root.iter(f"{ns}polyline"):
            for pair in poly.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= chart.width
                assert 0 <= y <= chart.height

    def test_flat_series_does_not_crash(self):
        chart = LineChart("flat", "x", "y")
        chart.add_series("only", [(0, 5), (1, 5)])
        assert "<polyline" in chart.to_svg()

    def test_empty_chart_renders(self):
        chart = LineChart("empty", "x", "y")
        ET.fromstring(chart.to_svg())

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        _chart().save(path)
        assert path.read_text().startswith("<svg")


def _bars() -> BarChart:
    chart = BarChart("Rewrite cost", "instance", "ms")
    chart.add_bar("web-0", 12.5)
    chart.add_bar("web-1", 7.25)
    chart.add_bar("web-2", 0.0)
    return chart


class TestBarChart:
    def test_output_is_wellformed_xml(self):
        root = ET.fromstring(_bars().to_svg())
        assert root.tag.endswith("svg")

    def test_title_and_labels_present(self):
        svg = _bars().to_svg()
        assert "Rewrite cost" in svg
        assert "instance" in svg
        assert "ms" in svg

    def test_one_rect_per_bar_plus_background(self):
        svg = _bars().to_svg()
        # one background rect + one rect per bar
        assert svg.count("<rect") == 1 + 3

    def test_bar_labels_and_value_captions(self):
        svg = _bars().to_svg()
        assert ">web-0</text>" in svg
        assert ">web-1</text>" in svg
        assert "12.5" in svg

    def test_bars_scaled_into_plot_area(self):
        chart = _bars()
        root = ET.fromstring(chart.to_svg())
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        rects = list(root.iter(f"{ns}rect"))[1:]     # skip background
        for rect in rects:
            x = float(rect.get("x"))
            y = float(rect.get("y"))
            assert 0 <= x <= chart.width
            assert 0 <= y <= chart.height
            assert float(rect.get("height")) >= 0

    def test_taller_value_means_taller_bar(self):
        chart = _bars()
        root = ET.fromstring(chart.to_svg())
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        rects = list(root.iter(f"{ns}rect"))[1:]
        heights = [float(rect.get("height")) for rect in rects]
        assert heights[0] > heights[1] > heights[2]

    def test_empty_series_renders_axes_only(self):
        chart = BarChart("empty", "x", "y")
        svg = chart.to_svg()
        ET.fromstring(svg)
        assert svg.count("<rect") == 1          # just the background
        assert "empty" in svg

    def test_all_zero_bars_do_not_crash(self):
        chart = BarChart("zeros", "x", "y")
        chart.add_bar("a", 0.0)
        chart.add_bar("b", 0.0)
        ET.fromstring(chart.to_svg())

    def test_save(self, tmp_path):
        path = tmp_path / "bars.svg"
        _bars().save(path)
        assert path.read_text().startswith("<svg")
