"""Tests for the dependency-free SVG charts."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.tools.svgplot import BarChart, LineChart, StackedBarChart


def _chart() -> LineChart:
    chart = LineChart("Throughput", "time (s)", "req/s")
    chart.add_series("a", [(0, 10), (1, 12), (2, 8)])
    chart.add_series("b", [(0, 9), (1, 9), (2, 9)], dashed=True)
    return chart


class TestLineChart:
    def test_output_is_wellformed_xml(self):
        root = ET.fromstring(_chart().to_svg())
        assert root.tag.endswith("svg")

    def test_title_and_labels_present(self):
        svg = _chart().to_svg()
        assert "Throughput" in svg
        assert "time (s)" in svg
        assert "req/s" in svg

    def test_one_polyline_per_series(self):
        svg = _chart().to_svg()
        assert svg.count("<polyline") == 2

    def test_dashed_series_marked(self):
        svg = _chart().to_svg()
        assert "stroke-dasharray" in svg

    def test_legend_labels(self):
        svg = _chart().to_svg()
        assert ">a</text>" in svg
        assert ">b</text>" in svg

    def test_points_scaled_into_plot_area(self):
        chart = _chart()
        svg = chart.to_svg()
        root = ET.fromstring(svg)
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        for poly in root.iter(f"{ns}polyline"):
            for pair in poly.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= chart.width
                assert 0 <= y <= chart.height

    def test_flat_series_does_not_crash(self):
        chart = LineChart("flat", "x", "y")
        chart.add_series("only", [(0, 5), (1, 5)])
        assert "<polyline" in chart.to_svg()

    def test_empty_chart_renders(self):
        chart = LineChart("empty", "x", "y")
        ET.fromstring(chart.to_svg())

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        _chart().save(path)
        assert path.read_text().startswith("<svg")


def _bars() -> BarChart:
    chart = BarChart("Rewrite cost", "instance", "ms")
    chart.add_bar("web-0", 12.5)
    chart.add_bar("web-1", 7.25)
    chart.add_bar("web-2", 0.0)
    return chart


class TestBarChart:
    def test_output_is_wellformed_xml(self):
        root = ET.fromstring(_bars().to_svg())
        assert root.tag.endswith("svg")

    def test_title_and_labels_present(self):
        svg = _bars().to_svg()
        assert "Rewrite cost" in svg
        assert "instance" in svg
        assert "ms" in svg

    def test_one_rect_per_bar_plus_background(self):
        svg = _bars().to_svg()
        # one background rect + one rect per bar
        assert svg.count("<rect") == 1 + 3

    def test_bar_labels_and_value_captions(self):
        svg = _bars().to_svg()
        assert ">web-0</text>" in svg
        assert ">web-1</text>" in svg
        assert "12.5" in svg

    def test_bars_scaled_into_plot_area(self):
        chart = _bars()
        root = ET.fromstring(chart.to_svg())
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        rects = list(root.iter(f"{ns}rect"))[1:]     # skip background
        for rect in rects:
            x = float(rect.get("x"))
            y = float(rect.get("y"))
            assert 0 <= x <= chart.width
            assert 0 <= y <= chart.height
            assert float(rect.get("height")) >= 0

    def test_taller_value_means_taller_bar(self):
        chart = _bars()
        root = ET.fromstring(chart.to_svg())
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        rects = list(root.iter(f"{ns}rect"))[1:]
        heights = [float(rect.get("height")) for rect in rects]
        assert heights[0] > heights[1] > heights[2]

    def test_empty_series_renders_axes_only(self):
        chart = BarChart("empty", "x", "y")
        svg = chart.to_svg()
        ET.fromstring(svg)
        assert svg.count("<rect") == 1          # just the background
        assert "empty" in svg

    def test_all_zero_bars_do_not_crash(self):
        chart = BarChart("zeros", "x", "y")
        chart.add_bar("a", 0.0)
        chart.add_bar("b", 0.0)
        ET.fromstring(chart.to_svg())

    def test_save(self, tmp_path):
        path = tmp_path / "bars.svg"
        _bars().save(path)
        assert path.read_text().startswith("<svg")


def _stacked() -> StackedBarChart:
    chart = StackedBarChart(
        "Tail latency by phase", "request", "ms",
        categories=["serve", "trap", "rewrite-stall"],
    )
    chart.add_bar("r-01", {"serve": 3.0, "trap": 1.0, "rewrite-stall": 6.0})
    chart.add_bar("r-02", {"serve": 2.0, "trap": 0.0})
    chart.add_bar("r-03", {"serve": 1.5})
    return chart


class TestStackedBarChart:
    def test_output_is_wellformed_xml(self):
        root = ET.fromstring(_stacked().to_svg())
        assert root.tag.endswith("svg")

    def test_title_axis_and_bar_labels_present(self):
        svg = _stacked().to_svg()
        assert "Tail latency by phase" in svg
        assert "request" in svg and "ms" in svg
        assert ">r-01</text>" in svg and ">r-03</text>" in svg

    def test_zero_segments_are_omitted(self):
        chart = _stacked()
        svg = chart.to_svg()
        # 1 background + 3 legend swatches + 5 non-zero segments
        # (r-01 contributes three, r-02's zero trap is dropped)
        assert svg.count("<rect") == 1 + len(chart.categories) + 5

    def test_segments_stack_without_overlap(self):
        chart = _stacked()
        root = ET.fromstring(chart.to_svg())
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        rects = list(root.iter(f"{ns}rect"))[1:]
        segments = [r for r in rects if float(r.get("width")) > 10]
        by_x: dict[float, list] = {}
        for rect in segments:
            by_x.setdefault(float(rect.get("x")), []).append(rect)
        assert len(by_x) == 3                    # one column per bar
        tall = max(by_x.values(), key=len)       # r-01's three segments
        assert len(tall) == 3
        # stacked bottom-up: each segment's top is the next one's bottom
        stack = sorted(tall, key=lambda r: -float(r.get("y")))
        for below, above in zip(stack, stack[1:]):
            bottom_of_above = float(above.get("y")) + float(above.get("height"))
            assert bottom_of_above == pytest.approx(float(below.get("y")), abs=0.11)

    def test_stack_height_tracks_phase_sum(self):
        chart = _stacked()
        root = ET.fromstring(chart.to_svg())
        ns = root.tag.split("}")[0] + "}" if "}" in root.tag else ""
        rects = list(root.iter(f"{ns}rect"))[1:]
        segments = [r for r in rects if float(r.get("width")) > 10]
        by_x: dict[float, float] = {}
        for rect in segments:
            x = float(rect.get("x"))
            by_x[x] = by_x.get(x, 0.0) + float(rect.get("height"))
        totals = [h for __, h in sorted(by_x.items())]
        # bar sums 10.0 / 2.0 / 1.5 → pixel heights in proportion
        assert totals[0] > totals[1] > totals[2]
        assert totals[0] / totals[2] == pytest.approx(10.0 / 1.5, rel=0.05)

    def test_legend_lists_every_category_in_order(self):
        chart = _stacked()
        svg = chart.to_svg()
        positions = [svg.index(f">{c}</text>") for c in chart.categories]
        assert positions == sorted(positions)

    def test_categories_get_distinct_colors(self):
        chart = _stacked()
        colors = {chart.color(c) for c in chart.categories}
        assert len(colors) == len(chart.categories)

    def test_empty_chart_renders(self):
        chart = StackedBarChart("empty", "x", "y", categories=["a"])
        ET.fromstring(chart.to_svg())

    def test_save(self, tmp_path):
        path = tmp_path / "stack.svg"
        _stacked().save(path)
        assert path.read_text().startswith("<svg")
