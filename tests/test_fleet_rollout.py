"""Tests for the rollout state machine (canary and rolling)."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.fleet import (
    FleetController,
    FleetPolicy,
    InstanceState,
    RolloutExecutor,
    get_app,
)
from repro.kernel import Kernel


def make_fleet(size, **policy_kwargs):
    policy_kwargs.setdefault("features", get_app("lighttpd").features)
    policy_kwargs.setdefault("probe_requests", 2)
    controller = FleetController(
        Kernel(), "lighttpd", FleetPolicy(**policy_kwargs), size=size
    )
    controller.spawn_fleet()
    return controller


def all_pristine(controller: FleetController) -> bool:
    return not any(instance.customized for instance in controller.instances)


class TestCanaryRollout:
    def test_canary_first_then_rest(self):
        controller = make_fleet(3, strategy="canary", max_unavailable=2)
        executor = RolloutExecutor(controller)
        assert executor.step()                      # canary batch
        assert executor.report.state == "rolling"
        assert executor.report.customized == ["lighttpd-0"]
        executor.run()
        assert executor.report.completed
        assert len(executor.report.customized) == 3
        assert all(i.customized for i in controller.instances)
        assert controller.pool.in_service() == [9000, 9001, 9002]

    def test_canary_actions_recorded_in_order(self):
        controller = make_fleet(2, strategy="canary")
        report = RolloutExecutor(controller).run()
        canary_steps = [
            step.action for step in report.steps
            if step.instance == "lighttpd-0"
        ]
        assert canary_steps == [
            "drain", "canary-customize", "probe", "rejoin"
        ]

    def test_gate_failure_halts_and_rolls_back(self, monkeypatch):
        controller = make_fleet(3, strategy="canary", max_unavailable=2)
        executor = RolloutExecutor(controller)
        executor.step()                             # canary succeeds
        real_probe = FleetController.probe

        def failing_probe(self, instance):
            probe = real_probe(self, instance)
            probe.succeeded = 0                     # health collapses
            return probe

        monkeypatch.setattr(FleetController, "probe", failing_probe)
        assert not executor.step()
        report = executor.report
        assert report.aborted
        assert "health gate failed" in report.aborted_reason
        # the already-customized canary was rolled back too
        assert "lighttpd-0" in report.rolled_back
        assert all_pristine(controller)
        assert controller.pool.in_service() == [9000, 9001, 9002]

    def test_canary_fault_aborts_everything_pristine(self):
        controller = make_fleet(3, strategy="canary")
        executor = RolloutExecutor(controller)
        plan = FaultPlan(seed=7).arm(
            "restore.memory", "permanent", on_call=1, times=10
        )
        with plan:
            executor.step()
        assert plan.fired >= 1
        report = executor.report
        assert report.aborted
        assert "transaction rolled back" in report.aborted_reason
        assert report.customized == []
        assert all_pristine(controller)
        # every instance — including the failed canary — still serves
        for instance in controller.instances:
            assert controller.alive(instance)
            assert controller.app.wanted_request(
                controller.kernel, instance.port
            )
        assert controller.instance(0).state is InstanceState.FAILED


class TestRollingRollout:
    def test_rolling_respects_max_unavailable(self):
        controller = make_fleet(5, strategy="rolling", max_unavailable=2)
        executor = RolloutExecutor(controller)
        assert executor.batches_remaining == 3      # 2 + 2 + 1
        report = executor.run()
        assert report.completed
        assert report.max_drained_seen == 2
        assert len(report.customized) == 5

    def test_mid_rolling_abort_rolls_back_earlier_batches(self, monkeypatch):
        controller = make_fleet(4, strategy="rolling", max_unavailable=1)
        executor = RolloutExecutor(controller)
        assert executor.step() and executor.step()  # two instances done
        assert len(executor.report.customized) == 2

        plan = FaultPlan(seed=11).arm(
            "restore.memory", "permanent", on_call=1, times=10
        )
        with plan:
            executor.step()                         # third instance fails
        report = executor.report
        assert report.aborted
        assert sorted(report.rolled_back) == ["lighttpd-0", "lighttpd-1"]
        assert all_pristine(controller)
        assert controller.pool.in_service() == [9000, 9001, 9002, 9003]

    def test_done_executor_refuses_more_steps(self):
        controller = make_fleet(2, strategy="rolling", max_unavailable=2)
        executor = RolloutExecutor(controller)
        executor.run()
        assert executor.done
        assert not executor.step()

    def test_report_serializes(self):
        controller = make_fleet(2, strategy="rolling", max_unavailable=2)
        report = RolloutExecutor(controller).run()
        payload = report.to_dict()
        assert payload["state"] == "completed"
        assert len(payload["steps"]) == len(report.steps)
        assert payload["probes"][0]["instance"] == "lighttpd-0"


class TestPlanning:
    def test_empty_fleet_rejected(self):
        controller = FleetController(
            Kernel(), "lighttpd",
            FleetPolicy(features=("dav-write",)), size=2,
        )
        with pytest.raises(ValueError):
            RolloutExecutor(controller)
