"""Tests for the experiment-report renderer."""

from __future__ import annotations

import json
import pathlib

from repro.tools import report


def _write(tmp_path: pathlib.Path, name: str, payload) -> None:
    (tmp_path / f"{name}.json").write_text(json.dumps(payload))


class TestReportRenderer:
    def test_empty_directory(self, tmp_path):
        text = report.render(tmp_path)
        assert "no experiment artifacts" in text

    def test_partial_artifacts(self, tmp_path):
        _write(tmp_path, "fig2_footprint", {
            "app": {"total_static_blocks": 10, "executed_blocks": 8,
                    "unused_blocks": 2, "init_only_blocks": 3},
        })
        text = report.render(tmp_path)
        assert "Figure 2" in text
        assert "| app | 10 | 8 | 2 | 3 |" in text
        assert "Figure 6" not in text

    def test_unknown_artifacts_listed(self, tmp_path):
        _write(tmp_path, "my_custom_experiment", {"x": 1})
        text = report.render(tmp_path)
        assert "my_custom_experiment.json" in text

    def test_table1_rendering(self, tmp_path):
        _write(tmp_path, "table1_cves", {
            "CVE-X": {"command": "SET", "vanilla_exploited": True,
                      "dynacut_mitigated": True,
                      "service_alive_after": True},
        })
        text = report.render(tmp_path)
        assert "| CVE-X | SET | exploited | mitigated |" in text

    def test_full_results_directory_renders(self):
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        if not results.exists():
            import pytest

            pytest.skip("results/ not generated yet")
        text = report.render(results)
        assert "Figure 9" in text
        assert text.count("|") > 50

    def test_main_writes_stdout(self, tmp_path, capsys):
        _write(tmp_path, "fig2_footprint", {
            "a": {"total_static_blocks": 1, "executed_blocks": 1,
                  "unused_blocks": 0, "init_only_blocks": 0},
        })
        assert report.main([str(tmp_path)]) == 0
        assert "Figure 2" in capsys.readouterr().out
