"""Prove-mode removal-set classification (DynaFlow liveness proofs).

Legacy refinement assumes every kept block is live, so a removed block
any kept byte can reach stays SUSPECT forever.  Prove mode only roots
liveness at the entry point, address-taken code, and dynamic exports —
a kept-but-unreachable reference no longer pins a removed block.  The
synthetic guest below isolates exactly that upgrade; the server test
exercises the same path over a real traced removal set.
"""

from __future__ import annotations

import json

from repro.analysis.reachability import BlockClass, refine_removal_set
from repro.tracing import BlockRecord

from .helpers import build_asm

# _start either exits or enters the undesired feature through arm_entry
# (the designated trap site).  helper_arm is only otherwise referenced
# by unused_kept — kept code that nothing live ever reaches.
DISPATCH = """
.section text
.global _start
.global arm_entry
.global helper_arm
.global unused_kept
_start:
    cmpi r1, 0
    je _Ldone
    jmp arm_entry
_Ldone:
    movi r0, 0
    hlt
arm_entry:
    movi r0, 1
    jmp helper_arm
helper_arm:
    movi r0, 2
    ret
unused_kept:
    jmp helper_arm
"""


def _dispatch_records(image):
    arm = image.symbol_address("arm_entry")
    helper = image.symbol_address("helper_arm")
    unused = image.symbol_address("unused_kept")
    records = [
        BlockRecord(image.name, arm, helper - arm),
        BlockRecord(image.name, helper, unused - helper),
    ]
    return records, [records[0]]


class TestSuspectUpgrade:
    def test_legacy_keeps_kept_reference_suspect(self):
        image = build_asm(DISPATCH, "prove_legacy")
        records, entries = _dispatch_records(image)
        result = refine_removal_set(image, records, entries)
        assert result.mode == "legacy"
        assert result.verdict_of(entries[0]) is BlockClass.TRAP_REQUIRED
        # unused_kept jumps into helper_arm and legacy assumes all kept
        # code is live, so the block cannot be proven dead
        assert result.verdict_of(records[1]) is BlockClass.SUSPECT

    def test_prove_upgrades_unrooted_reference(self):
        image = build_asm(DISPATCH, "prove_upgrade")
        records, entries = _dispatch_records(image)
        result = refine_removal_set(image, records, entries, prove=True)
        assert result.mode == "prove"
        assert result.fallback_reason is None
        assert result.verdict_of(entries[0]) is BlockClass.TRAP_REQUIRED
        # unused_kept is not a liveness root (not the entry, not
        # address-taken, not exported): its reference no longer counts
        assert result.verdict_of(records[1]) is BlockClass.PROVABLY_DEAD
        assert result.legacy_counts == {
            "provably_dead": 0, "trap_required": 1, "suspect": 1,
        }

    def test_trap_entries_never_upgrade(self):
        image = build_asm(DISPATCH, "prove_entries")
        records, entries = _dispatch_records(image)
        result = refine_removal_set(image, records, entries, prove=True)
        assert entries[0] in result.trap_required
        assert entries[0] not in result.provably_dead

    def test_address_taken_in_dead_code_still_upgrades(self):
        # the lea lives inside unused_kept itself: the address is taken,
        # but only by code no liveness root reaches — the prover keeps
        # the precision and the verdict stays dead
        image = build_asm(
            DISPATCH.replace(
                "unused_kept:\n    jmp helper_arm",
                "unused_kept:\n    lea r1, helper_arm\n    jmpr r1",
            ),
            "prove_taken_dead",
        )
        records, entries = _dispatch_records(image)
        result = refine_removal_set(image, records, entries, prove=True)
        assert result.mode == "prove"
        assert result.verdict_of(records[1]) is BlockClass.PROVABLY_DEAD

    def test_unresolved_indirect_in_live_code_pins_taken_block(self):
        # an unresolved jmpr on the live path may land on any address-
        # taken byte; helper_arm's address is taken there, so proving it
        # dead would be unsound and the verdict must stay SUSPECT
        image = build_asm(
            """
            .section text
            .global _start
            .global noop
            .global arm_entry
            .global helper_arm
            _start:
                cmpi r1, 0
                je _Ldone
                jmp arm_entry
            _Ldone:
                lea r2, helper_arm
                call noop
                jmpr r2
            noop:
                ret
            arm_entry:
                movi r0, 1
                jmp helper_arm
            helper_arm:
                movi r0, 2
                ret
            """,
            "prove_taken_live",
        )
        arm = image.symbol_address("arm_entry")
        helper = image.symbol_address("helper_arm")
        records = [
            BlockRecord(image.name, arm, helper - arm),
            BlockRecord(image.name, helper, 11),
        ]
        result = refine_removal_set(
            image, records, [records[0]], prove=True
        )
        assert result.mode == "prove"   # bounded, so no fallback
        assert result.verdict_of(records[1]) is BlockClass.SUSPECT

    def test_init_records_without_entries_derive_frontier(self):
        image = build_asm(DISPATCH, "prove_frontier")
        records, __ = _dispatch_records(image)
        result = refine_removal_set(image, records, prove=True)
        # no designated entries: the removed block with a kept direct
        # edge becomes the trap frontier automatically
        assert result.entry_starts
        assert not result.suspect


class TestDeterministicSerialization:
    def test_to_dict_is_stable_across_runs(self):
        dumps = []
        for run in range(2):
            image = build_asm(DISPATCH, "prove_det")
            records, entries = _dispatch_records(image)
            result = refine_removal_set(image, records, entries, prove=True)
            dumps.append(json.dumps(result.to_dict(), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_to_dict_sorted_and_typed(self):
        image = build_asm(DISPATCH, "prove_shape")
        records, entries = _dispatch_records(image)
        payload = refine_removal_set(
            image, records, entries, prove=True
        ).to_dict()
        assert list(payload["entry_starts"]) == sorted(payload["entry_starts"])
        for bucket in ("provably_dead", "trap_required", "suspect"):
            offsets = [r["offset"] for r in payload[bucket]]
            assert offsets == sorted(offsets)
        assert payload["mode"] == "prove"
        assert payload["counts"] == {
            "provably_dead": 1, "trap_required": 1, "suspect": 0,
        }
        # round-trips through JSON without loss
        assert json.loads(json.dumps(payload)) == payload

    def test_wipe_safe_subset_of_provably_dead(self):
        image = build_asm(DISPATCH, "prove_wipe")
        records, entries = _dispatch_records(image)
        result = refine_removal_set(image, records, entries, prove=True)
        dead_offsets = {r.offset for r in result.provably_dead}
        assert set(result.wipe_safe) <= dead_offsets
        assert all(
            r in result.provably_dead for r in result.wipe_safe_records()
        )


class TestServerProfile:
    def test_redis_thin_profile_upgrades_suspects(self):
        from repro.tools.dynalint_cli import (
            _dispatcher_entries,
            _profile_redis_thin,
        )

        profile = _profile_redis_thin()
        binary = profile.kernel.binaries[profile.binary]
        entries = _dispatcher_entries(profile)
        legacy = refine_removal_set(binary, profile.blocks, entries)
        prove = refine_removal_set(
            binary, profile.blocks, entries, prove=True
        )
        assert prove.mode == "prove"
        assert len(prove.suspect) < len(legacy.suspect)
        # the upgrade moves suspects into provably-dead, never drops one
        assert len(prove.removable) + len(prove.suspect) == len(
            legacy.removable
        ) + len(legacy.suspect)
        assert prove.legacy_counts == legacy.counts
