"""Property tests for the DynaFlow worklist solver and its lattice.

The solver is trusted by the liveness and value-set proofs, so the
properties the proofs lean on are pinned here directly:

* termination and the fixpoint equations on arbitrary generated graphs,
  forward and backward;
* :class:`ValueSet` join is commutative, idempotent, and associative
  up to precision (widening thresholds make exact associativity too
  strong — the join may widen at different points depending on order,
  but never below either operand);
* a transfer function that loses information raises
  :class:`MonotonicityError` instead of oscillating;
* once widening lifts a block's output above ``transfer(input)``, a
  later exact recomputation below the widened value must *not* trip
  the monotonicity guard (regression: interval widening in the VSA
  produced exactly this shape on 625.x264_s).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dataflow import (
    DataflowProblem,
    Direction,
    FixpointError,
    MonotonicityError,
    ValueSet,
    solve,
)

# ----------------------------------------------------------------------
# graph + problem generators


@st.composite
def graphs(draw):
    """A small block graph: ids, edge map, and entry blocks."""
    n = draw(st.integers(2, 10))
    blocks = list(range(n))
    edges = {}
    for src in blocks:
        succs = draw(
            st.lists(st.integers(0, n - 1), max_size=3, unique=True)
        )
        edges[src] = tuple(succs)
    entries = draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=2, unique=True)
    )
    return blocks, edges, entries


def gen_kill_problem(blocks, direction=Direction.FORWARD):
    """A classic gen/kill bit-set problem: block b generates {b}."""
    return DataflowProblem(
        direction=direction,
        boundary=frozenset({-1}),
        join=lambda a, b: a | b,
        transfer=lambda block, state: state | {block},
        equals=lambda a, b: a == b,
    )


class TestSolverProperties:
    @settings(max_examples=60, deadline=None)
    @given(graphs())
    def test_forward_fixpoint(self, graph):
        blocks, edges, entries = graph
        problem = gen_kill_problem(blocks)
        solution = solve(blocks, edges, entries, problem)

        known = set(blocks)
        for block in blocks:
            out = solution.output_of(block)
            inp = solution.input_of(block)
            if out is None:
                assert inp is None      # unreached blocks carry no state
                continue
            # fixpoint equation 1: out = transfer(in)
            assert out == problem.transfer(block, inp)
            # fixpoint equation 2: in = join of pred outs (+ boundary)
            expect = frozenset()
            for pred in blocks:
                if block in edges.get(pred, ()) and (
                    solution.output_of(pred) is not None
                ):
                    expect |= solution.output_of(pred)
            if block in entries:
                expect |= problem.boundary
            assert inp == expect
            # every propagated edge was consumed
            for succ in edges.get(block, ()):
                if succ in known:
                    assert solution.input_of(succ) is not None

    @settings(max_examples=60, deadline=None)
    @given(graphs())
    def test_backward_fixpoint(self, graph):
        blocks, edges, entries = graph
        problem = gen_kill_problem(blocks, Direction.BACKWARD)
        solution = solve(blocks, edges, entries, problem)
        for block in blocks:
            out = solution.output_of(block)
            inp = solution.input_of(block)
            if out is None:
                continue
            assert out == problem.transfer(block, inp)
            # backward: input is the join over *successor* outputs
            expect = frozenset()
            for succ in edges.get(block, ()):
                succ_out = solution.output_of(succ)
                if succ in set(blocks) and succ_out is not None:
                    expect |= succ_out
            if block in entries:
                expect |= problem.boundary
            assert inp == expect

    @settings(max_examples=60, deadline=None)
    @given(graphs())
    def test_visits_bounded_by_lattice_height(self, graph):
        blocks, edges, entries = graph
        solution = solve(blocks, edges, entries, gen_kill_problem(blocks))
        # each block's output can grow at most |blocks|+1 times, and a
        # block only requeues when a predecessor output grows
        assert solution.visits <= len(blocks) * (len(blocks) + 2)

    def test_monotonicity_violation_raises(self):
        # the transfer *shrinks* after the first visit: a lossy client
        seen = set()

        def transfer(block, state):
            if block in seen:
                return frozenset()
            seen.add(block)
            return state | {block}

        problem = DataflowProblem(
            direction=Direction.FORWARD,
            boundary=frozenset({-1}),
            join=lambda a, b: a | b,
            transfer=transfer,
            equals=lambda a, b: a == b,
        )
        with pytest.raises(MonotonicityError):
            solve([0, 1], {0: (1,), 1: (0,)}, [0], problem)

    def test_fixpoint_bound_raises_without_widening(self):
        # an infinite-height lattice (growing int sets) with no widen
        # hook must hit the visit budget, not loop forever
        problem = DataflowProblem(
            direction=Direction.FORWARD,
            boundary=frozenset({0}),
            join=lambda a, b: a | b,
            transfer=lambda block, state: state | {max(state) + 1},
            equals=lambda a, b: a == b,
            max_visits=16,
        )
        with pytest.raises(FixpointError):
            solve([0], {0: (0,)}, [0], problem)

    def test_widened_output_may_exceed_exact_transfer(self):
        # Regression for the widening/monotonicity interaction: widening
        # lifts block 0's output to TOP ({-1}); the next exact transfer
        # of TOP input produces {0}, strictly *below* the stored output.
        # That is not a client bug — the guard must stay quiet and the
        # solver must converge on the widened value.
        TOP = frozenset({-1})

        def join(a, b):
            return TOP if (a == TOP or b == TOP) else a | b

        def transfer(block, state):
            if state == TOP:
                return frozenset({0})
            return state | {max(state) + 1}

        problem = DataflowProblem(
            direction=Direction.FORWARD,
            boundary=frozenset({0}),
            join=join,
            transfer=transfer,
            equals=lambda a, b: a == b,
            widen=lambda old, new: TOP,
            widen_after=2,
            max_visits=64,
        )
        solution = solve([0], {0: (0,)}, [0], problem)
        assert solution.output_of(0) == TOP


# ----------------------------------------------------------------------
# ValueSet lattice laws


def value_sets():
    consts = st.frozensets(st.integers(0, 1 << 32), min_size=1, max_size=4)
    return st.one_of(
        st.just(ValueSet.bottom()),
        st.just(ValueSet.top()),
        st.just(ValueSet.unknown_int()),
        st.builds(
            ValueSet.const_set, consts, code=st.booleans()
        ),
        st.builds(
            ValueSet.interval,
            st.integers(0, 1 << 20),
            st.integers(0, 1 << 20),
            code=st.booleans(),
        ),
        st.builds(ValueSet.stack_offset, st.integers(-256, 256)),
    )


def contains(vs: ValueSet, value: int) -> bool:
    """Is the concrete global ``value`` described by ``vs``?"""
    if vs.global_top:
        return True
    if vs.consts is not None:
        return value in vs.consts
    if vs.lo is not None and vs.hi is not None:
        return vs.lo <= value <= vs.hi
    return False


class TestValueSetLattice:
    @settings(max_examples=200, deadline=None)
    @given(value_sets(), value_sets())
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @settings(max_examples=200, deadline=None)
    @given(value_sets())
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @settings(max_examples=200, deadline=None)
    @given(value_sets(), value_sets())
    def test_join_is_upper_bound(self, a, b):
        # soundness form of associativity/ordering: the join describes
        # every concrete value either operand describes
        joined = a.join(b)
        for operand in (a, b):
            if operand.consts is not None:
                assert all(contains(joined, v) for v in operand.consts)
            if operand.global_top and not (a.is_bottom or b.is_bottom):
                assert joined.global_top
            if operand.stack is not None:
                assert joined.stack_top or (
                    joined.stack is not None
                    and operand.stack <= joined.stack
                )

    @settings(max_examples=200, deadline=None)
    @given(value_sets(), value_sets(), value_sets())
    def test_join_associative_up_to_precision(self, a, b, c):
        # widening thresholds may fire at different points depending on
        # association, so demand soundness, not syntactic equality:
        # both associations describe the same concrete values for every
        # finite operand
        left = a.join(b).join(c)
        right = a.join(b.join(c))
        for operand in (a, b, c):
            for value in operand.consts or ():
                assert contains(left, value)
                assert contains(right, value)
        # and neither association invents bottom
        assert left.is_bottom == right.is_bottom

    @settings(max_examples=200, deadline=None)
    @given(value_sets(), value_sets())
    def test_widen_dominates_join(self, a, b):
        # widen(a, b) must sit at or above join(a, b): everything the
        # join describes the widened value describes too
        joined = a.join(b)
        widened = a.widen(b)
        for value in joined.consts or ():
            assert contains(widened, value)
        if joined.global_top:
            assert widened.global_top
        if joined.has_global:
            assert widened.has_global or widened.global_top

    @settings(max_examples=100, deadline=None)
    @given(
        st.frozensets(st.integers(0, 1 << 16), min_size=1, max_size=4),
        st.integers(-(1 << 12), 1 << 12),
    )
    def test_shifted_is_exact_on_finite_sets(self, values, delta):
        vs = ValueSet.const_set(values)
        shifted = vs.shifted(delta)
        mask = (1 << 64) - 1
        assert shifted.consts == frozenset((v + delta) & mask for v in values)

    @settings(max_examples=100, deadline=None)
    @given(value_sets(), value_sets())
    def test_add_preserves_code_taint_of_finite_operands(self, a, b):
        # taint may only be absorbed by an *untainted* TOP (documented
        # lattice rule); any finite tainted operand keeps the result hot
        result = a.add(b)
        if (
            a.code and a.is_finite and b.is_finite
        ):
            assert result.code
