"""Property: static CFG recovery covers every dynamically traced block.

DynaLint's removal-set refinement maps dynamic BlockRecords onto static
CFG blocks; the mapping is only sound if every block the tracer ever
observes starts at a static block leader.  This is exercised over the
three servers, two SPEC kernels, and hypothesis-generated MiniC
programs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import build_cfg
from repro.apps import get_benchmark, stage_spec
from repro.apps.spec.common import INIT_DONE_LINE
from repro.kernel import Kernel
from repro.tracing import BlockTracer, CoverageTrace

from .helpers import build_minic

_CFG_CACHE: dict[str, frozenset[int]] = {}


def _leaders_of(image) -> frozenset[int]:
    starts = _CFG_CACHE.get(image.name)
    if starts is None:
        starts = frozenset(build_cfg(image).block_starts())
        _CFG_CACHE[image.name] = starts
    return starts


def missing_leaders(kernel: Kernel, trace: CoverageTrace) -> list[tuple[str, int]]:
    """Traced (module, offset) pairs that are not static CFG leaders."""
    missing = []
    for record in trace.blocks:
        image = kernel.binaries.get(record.module)
        if image is None:       # [anon] and other unregistered regions
            continue
        if record.offset not in _leaders_of(image):
            missing.append((record.module, record.offset))
    return missing


def _trace_server(stager, client_factory, requests):
    kernel = Kernel()
    proc = stager(kernel)
    client = client_factory(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    for request in requests:
        client(*request) if isinstance(request, tuple) else client(request)
    trace = tracer.finish()
    assert len(trace.blocks) > 50       # the workload really ran
    return kernel, trace


class TestServerCoverage:
    def test_lighttpd_blocks_are_static_leaders(self):
        from repro.apps import LIGHTTPD_PORT, stage_lighttpd
        from repro.workloads import HttpClient

        kernel, trace = _trace_server(
            stage_lighttpd,
            lambda k: HttpClient(k, LIGHTTPD_PORT).request,
            [("GET", "/"), ("GET", "/about.html"), ("PUT", "/upload"),
             ("DELETE", "/index.html"), ("GET", "/missing")],
        )
        assert missing_leaders(kernel, trace) == []

    def test_nginx_blocks_are_static_leaders(self):
        from repro.apps import NGINX_PORT, nginx_worker, stage_nginx
        from repro.workloads import HttpClient

        kernel = Kernel()
        master = stage_nginx(kernel)
        worker = nginx_worker(kernel, master)   # requests run here
        client = HttpClient(kernel, NGINX_PORT)
        tracer = BlockTracer(kernel, worker).attach()
        for method, path in [("GET", "/"), ("GET", "/index.html"),
                             ("POST", "/submit"), ("GET", "/nope")]:
            client.request(method, path)
        trace = tracer.finish()
        assert len(trace.blocks) > 50
        assert missing_leaders(kernel, trace) == []

    def test_redis_blocks_are_static_leaders(self):
        from repro.apps import REDIS_PORT, stage_redis
        from repro.workloads import RedisClient

        kernel, trace = _trace_server(
            stage_redis,
            lambda k: RedisClient(k, REDIS_PORT).command,
            ["PING", "SET k v", "GET k", "DEL k", "DBSIZE", "GET missing"],
        )
        assert missing_leaders(kernel, trace) == []


class TestSpecCoverage:
    def _trace_benchmark(self, name):
        kernel = Kernel()
        proc = stage_spec(kernel, name, iterations=1, run_to_init=False)
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run_until(
            lambda: INIT_DONE_LINE in proc.stdout_text(),
            max_instructions=10_000_000,
        )
        kernel.run_until(lambda: not proc.alive, max_instructions=30_000_000)
        trace = tracer.finish(quiesce=False)
        assert not proc.alive
        binary = get_benchmark(name).binary
        assert any(r.module == binary for r in trace.blocks)
        return kernel, trace

    def test_mcf_blocks_are_static_leaders(self):
        kernel, trace = self._trace_benchmark("605.mcf_s")
        assert missing_leaders(kernel, trace) == []

    def test_leela_blocks_are_static_leaders(self):
        kernel, trace = self._trace_benchmark("641.leela_s")
        assert missing_leaders(kernel, trace) == []


class TestGeneratedPrograms:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(2, 9),
        st.lists(st.integers(-9, 9), min_size=1, max_size=4),
    )
    def test_minic_blocks_are_static_leaders(self, bound, constants):
        terms = " + ".join(f"f({c}, i)" for c in constants)
        source = f"""
func f(c, i) {{
    if (c < 0) {{ return i - c; }}
    if (i % 2 == 0) {{ return c + i; }}
    return c * 2;
}}
func main() {{
    var acc = 0;
    var i = 0;
    while (i < {bound}) {{
        acc = acc + {terms};
        i = i + 1;
    }}
    return acc % 251;
}}
"""
        image = build_minic(source, f"gen{bound}_{len(constants)}",
                            with_libc=False)
        # names repeat across hypothesis examples with different code
        _CFG_CACHE.pop(image.name, None)
        kernel = Kernel()
        kernel.register_binary(image)
        proc = kernel.spawn(image.name)
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run(max_instructions=2_000_000, until=lambda: not proc.alive)
        trace = tracer.finish(quiesce=False)
        assert not proc.alive
        assert missing_leaders(kernel, trace) == []
