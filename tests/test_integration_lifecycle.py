"""Full-lifecycle integration test: the Figure 10 scenario end to end.

Lighttpd serves pages; after initialization the admin removes init-only
code; later a maintenance window re-enables HTTP PUT for an upload and
closes it again; finally the server keeps serving — all on one live
process with its connections intact, and with the live-code footprint
shrinking at every step compared to the static baselines.
"""

from __future__ import annotations

from repro.analysis import build_cfg
from repro.apps import LIGHTTPD_PORT, stage_lighttpd
from repro.apps.httpd_lighttpd import FORBIDDEN_SYMBOL, LIGHTTPD_BINARY, READY_LINE
from repro.core import (
    BlockMode,
    DynaCut,
    TraceDiff,
    TrapPolicy,
    chisel_debloat,
    init_only_blocks,
    razor_debloat,
)
from repro.kernel import Kernel
from repro.tracing import BlockTracer, merge_traces
from repro.workloads import HttpClient


def test_full_dynamic_customization_lifecycle():
    kernel = Kernel()
    proc = stage_lighttpd(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: READY_LINE in proc.stdout_text())
    client = HttpClient(kernel, LIGHTTPD_PORT)

    # ---- phase 1: profile init vs serving (GET-only workload + POST)
    init_trace = tracer.nudge_dump()
    for __ in range(3):
        assert client.get("/").status == 200
    client.head("/")
    client.options("/")
    client.post("/echo", "data")
    wanted_trace = tracer.nudge_dump()
    client.put("/probe.txt", "x")
    client.delete("/probe.txt")
    dav_trace = tracer.finish()

    serving_trace = merge_traces([wanted_trace, dav_trace])
    init_report = init_only_blocks(init_trace, serving_trace, LIGHTTPD_BINARY)
    dav_feature = TraceDiff(LIGHTTPD_BINARY).feature_blocks(
        "dav-write", [wanted_trace], [dav_trace]
    )
    assert init_report.removable_count > 0
    assert dav_feature.count > 0

    dynacut = DynaCut(kernel)

    # ---- phase 2: drop init code and lock down WebDAV writes
    dynacut.remove_init_code(
        proc.pid, LIGHTTPD_BINARY, list(init_report.init_only), wipe=True
    )
    proc = dynacut.restored_process(proc.pid)
    dynacut.disable_feature(
        proc.pid, dav_feature, policy=TrapPolicy.REDIRECT,
        mode=BlockMode.ENTRY, redirect_symbol=FORBIDDEN_SYMBOL,
    )
    proc = dynacut.restored_process(proc.pid)

    assert client.get("/").status == 200
    assert client.put("/locked.txt", "no").status == 403
    assert proc.alive

    # ---- phase 3: maintenance window — re-enable writes, upload, re-lock
    dynacut.enable_feature(proc.pid, dav_feature)
    proc = dynacut.restored_process(proc.pid)
    assert client.put("/upload.txt", "maintenance data").status == 201
    assert kernel.fs.read_file("/var/www/upload.txt") == b"maintenance data"

    dynacut.disable_feature(
        proc.pid, dav_feature, policy=TrapPolicy.REDIRECT,
        mode=BlockMode.ENTRY, redirect_symbol=FORBIDDEN_SYMBOL,
    )
    proc = dynacut.restored_process(proc.pid)
    assert client.put("/again.txt", "no").status == 403
    assert client.get("/upload.txt").body == b"maintenance data"

    # ---- phase 4: the uploaded content keeps serving, history recorded
    assert client.get("/").status == 200
    assert len(dynacut.history) == 4

    # ---- live-code comparison against the static baselines
    binary = kernel.binaries[LIGHTTPD_BINARY]
    cfg = build_cfg(binary)
    traces = [init_trace, wanted_trace, dav_trace]
    razor = razor_debloat(binary, traces)
    chisel = chisel_debloat(binary, traces)

    wiped_bytes = init_report.removable_bytes()
    executed_bytes = merge_traces(traces)
    total_executed = sum(
        b.size for b in executed_bytes.module_blocks(LIGHTTPD_BINARY)
    )
    # DynaCut's post-init live code is strictly smaller than what either
    # static tool must keep (they cannot remove executed init code)
    dynacut_live_blocks = (
        init_report.total_executed - init_report.removable_count
    )
    assert dynacut_live_blocks < razor.kept_count
    assert dynacut_live_blocks < chisel.kept_count
    assert 0 < wiped_bytes < total_executed
