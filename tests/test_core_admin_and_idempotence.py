"""Administrative API, checkpoint idempotence, rollback idempotence."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import READY_LINE, REDIS_BINARY
from repro.core import (
    BlockMode,
    CustomizationAborted,
    DynaCut,
    TraceDiff,
    TrapPolicy,
    init_only_blocks,
)
from repro.criu import checkpoint_tree, restore_tree
from repro.faults import KNOWN_SITES, FaultPlan
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import RedisClient


def _with_feature():
    kernel = Kernel()
    proc = stage_redis(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks("SET", [wanted], [undesired])
    return kernel, proc, client, feature


class TestAdminApi:
    def test_status_tracks_feature_lifecycle(self):
        kernel, proc, client, feature = _with_feature()
        dynacut = DynaCut(kernel)
        assert dynacut.disabled_features(proc.pid) == []

        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.REDIRECT,
            redirect_symbol="redis_unknown_cmd",
        )
        status = dynacut.status(proc.pid)
        assert status["alive"]
        assert status["disabled_features"] == ["SET"]
        assert status["rewrites"] == 1
        assert status["syscall_filter"] is None

        dynacut.enable_feature(proc.pid, feature)
        status = dynacut.status(proc.pid)
        assert status["disabled_features"] == []
        assert status["rewrites"] == 2

    def test_status_reports_syscall_filter(self):
        kernel, proc, client, __ = _with_feature()
        dynacut = DynaCut(kernel)
        dynacut.restrict_syscalls(proc.pid, {1, 2, 10, 11})
        status = dynacut.status(proc.pid)
        assert status["syscall_filter"] == [1, 2, 10, 11]

    def test_status_of_dead_tree(self):
        kernel, proc, client, __ = _with_feature()
        client.command("SHUTDOWN")
        kernel.run_until(lambda: not proc.alive)
        status = DynaCut(kernel).status(proc.pid)
        assert not status["alive"]
        assert status["tree_pids"] == []


class TestCheckpointIdempotence:
    def test_dump_restore_dump_is_stable(self):
        """checkpoint(restore(checkpoint(p))) reproduces the images.

        The strongest identity property of the C/R layer: nothing is
        lost or invented across a round trip.
        """
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        client.set("stable", "yes")

        first = checkpoint_tree(kernel, proc.pid, image_dir=None)
        restore_tree(kernel, first)
        second = checkpoint_tree(kernel, proc.pid, image_dir=None)

        a, b = first.processes[0], second.processes[0]
        assert a.core.regs == b.core.regs
        assert a.core.sigactions == b.core.sigactions
        assert a.core.next_fd == b.core.next_fd
        assert a.mm.vmas == b.mm.vmas
        assert a.pagemap.entries == b.pagemap.entries
        assert a.pages.data == b.pages.data
        assert [f.kind for f in a.files.fds] == [f.kind for f in b.files.fds]

    def test_double_restore_cycle_preserves_service(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        client.set("n", "0")
        for round_no in range(3):
            checkpoint = checkpoint_tree(kernel, proc.pid, image_dir=None)
            (proc,) = restore_tree(kernel, checkpoint)
            assert client.incr("n") == round_no + 1
        assert client.get("n") == "3"


# ----------------------------------------------------------------------
# rollback idempotence (property-based)

#: staged lazily, shared across examples — the invariant below is local
#: to each operation (pre-op bytes vs post-op bytes), so cumulative
#: state from earlier examples is part of the test, not a hazard
_CHAOS_WORLD: dict | None = None


def _chaos_world() -> dict:
    global _CHAOS_WORLD
    if _CHAOS_WORLD is not None:
        return _CHAOS_WORLD
    kernel = Kernel()
    proc = stage_redis(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: READY_LINE in proc.stdout_text())
    init_trace = tracer.nudge_dump()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a", "EXISTS a", "DBSIZE"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "SET", [wanted], [undesired]
    )
    init_report = init_only_blocks(init_trace, wanted, REDIS_BINARY)
    _CHAOS_WORLD = {
        "kernel": kernel,
        "pid": proc.pid,
        "client": client,
        "feature": feature,
        "init_blocks": list(init_report.init_only)[:30],
    }
    return _CHAOS_WORLD


_OP = st.tuples(
    st.sampled_from(["disable", "enable", "remove_init"]),
    st.sampled_from(sorted(KNOWN_SITES)),
    st.sampled_from(["transient", "permanent", "none"]),
    st.integers(min_value=0, max_value=2**16),
)


class TestRollbackIdempotence:
    """Random op interleavings with injected faults never half-patch.

    Property: after every disable_feature / enable_feature /
    remove_init_code call — committed or aborted — each watched code
    byte equals either its pre-call value (rollback) or the op's fully
    committed value; and the tree stays alive and serving.
    """

    def _watched(self, world) -> list[int]:
        offsets = [block.offset for block in world["feature"].blocks]
        offsets += [block.offset for block in world["init_blocks"]]
        return offsets

    def _snapshot(self, kernel, pid, offsets) -> dict[int, bytes]:
        memory = kernel.processes[pid].memory
        return {offset: memory.read_raw(offset, 1) for offset in offsets}

    def _committed_bytes(self, world, op, before):
        """The post-state a committed ``op`` must produce."""
        binary = world["kernel"].binaries[REDIS_BINARY]
        expected = dict(before)
        if op == "disable":
            for block in world["feature"].blocks:
                expected[block.offset] = b"\xcc"
        elif op == "enable":
            for block in world["feature"].blocks:
                expected[block.offset] = binary.read_bytes(block.offset, 1)
        else:
            for block in world["init_blocks"]:
                expected[block.offset] = b"\xcc"
        return expected

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(_OP, min_size=1, max_size=3))
    def test_interleaved_ops_commit_fully_or_not_at_all(self, ops):
        world = _chaos_world()
        kernel, pid = world["kernel"], world["pid"]
        dynacut = DynaCut(kernel)
        offsets = self._watched(world)

        for op, site, fault_kind, seed in ops:
            before = self._snapshot(kernel, pid, offsets)
            plan = FaultPlan(seed=seed)
            if fault_kind != "none":
                plan.arm(site, fault_kind, probability=0.8, times=1)
            committed = True
            with plan:
                try:
                    if op == "disable":
                        dynacut.disable_feature(
                            pid, world["feature"],
                            policy=TrapPolicy.TERMINATE, mode=BlockMode.ALL,
                        )
                    elif op == "enable":
                        dynacut.enable_feature(
                            pid, world["feature"], mode=BlockMode.ALL
                        )
                    else:
                        dynacut.remove_init_code(
                            pid, REDIS_BINARY, world["init_blocks"], wipe=True
                        )
                except CustomizationAborted:
                    committed = False

            proc = dynacut.restored_process(pid)
            assert proc.alive
            assert world["client"].ping()
            after = self._snapshot(kernel, pid, offsets)
            if committed:
                assert after == self._committed_bytes(world, op, before)
            else:
                assert after == before
            assert plan.consistent_with_plan()
