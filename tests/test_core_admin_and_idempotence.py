"""Administrative API and checkpoint idempotence properties."""

from __future__ import annotations

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.core import DynaCut, TraceDiff, TrapPolicy
from repro.criu import checkpoint_tree, restore_tree
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import RedisClient


def _with_feature():
    kernel = Kernel()
    proc = stage_redis(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks("SET", [wanted], [undesired])
    return kernel, proc, client, feature


class TestAdminApi:
    def test_status_tracks_feature_lifecycle(self):
        kernel, proc, client, feature = _with_feature()
        dynacut = DynaCut(kernel)
        assert dynacut.disabled_features(proc.pid) == []

        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.REDIRECT,
            redirect_symbol="redis_unknown_cmd",
        )
        status = dynacut.status(proc.pid)
        assert status["alive"]
        assert status["disabled_features"] == ["SET"]
        assert status["rewrites"] == 1
        assert status["syscall_filter"] is None

        dynacut.enable_feature(proc.pid, feature)
        status = dynacut.status(proc.pid)
        assert status["disabled_features"] == []
        assert status["rewrites"] == 2

    def test_status_reports_syscall_filter(self):
        kernel, proc, client, __ = _with_feature()
        dynacut = DynaCut(kernel)
        dynacut.restrict_syscalls(proc.pid, {1, 2, 10, 11})
        status = dynacut.status(proc.pid)
        assert status["syscall_filter"] == [1, 2, 10, 11]

    def test_status_of_dead_tree(self):
        kernel, proc, client, __ = _with_feature()
        client.command("SHUTDOWN")
        kernel.run_until(lambda: not proc.alive)
        status = DynaCut(kernel).status(proc.pid)
        assert not status["alive"]
        assert status["tree_pids"] == []


class TestCheckpointIdempotence:
    def test_dump_restore_dump_is_stable(self):
        """checkpoint(restore(checkpoint(p))) reproduces the images.

        The strongest identity property of the C/R layer: nothing is
        lost or invented across a round trip.
        """
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        client.set("stable", "yes")

        first = checkpoint_tree(kernel, proc.pid, image_dir=None)
        restore_tree(kernel, first)
        second = checkpoint_tree(kernel, proc.pid, image_dir=None)

        a, b = first.processes[0], second.processes[0]
        assert a.core.regs == b.core.regs
        assert a.core.sigactions == b.core.sigactions
        assert a.core.next_fd == b.core.next_fd
        assert a.mm.vmas == b.mm.vmas
        assert a.pagemap.entries == b.pagemap.entries
        assert a.pages.data == b.pages.data
        assert [f.kind for f in a.files.fds] == [f.kind for f in b.files.fds]

    def test_double_restore_cycle_preserves_service(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        client.set("n", "0")
        for round_no in range(3):
            checkpoint = checkpoint_tree(kernel, proc.pid, image_dir=None)
            (proc,) = restore_tree(kernel, checkpoint)
            assert client.incr("n") == round_no + 1
        assert client.get("n") == "3"
