"""End-to-end telemetry over the fleet stack.

The acceptance contract of the observability layer: aggregates
reconstructed from the recorded event stream alone must equal the live
controller/pool/supervisor numbers for the same run, and two runs with
the same FaultPlan seed must produce byte-identical exports.
"""

from __future__ import annotations

import json

from repro.faults import FaultPlan
from repro.fleet import (
    FleetController,
    FleetPolicy,
    FleetSupervisor,
    RolloutExecutor,
    get_app,
    inject_chaos,
)
from repro.kernel import Kernel
from repro.telemetry import (
    TelemetryHub,
    prometheus_snapshot,
    read_jsonl,
    recording,
    summarize_events,
    to_jsonl,
)
from repro.tools import telemetry_cli
from repro.workloads import SECOND_NS, TimelineEvent, run_request_timeline

SIZE = 2
DURATION = 8


def _run_fleet(seed: int):
    """A small customized fleet under chaos, fully recorded."""
    app = get_app("lighttpd")
    policy = FleetPolicy(
        features=app.features,
        trap_policy="verify",
        strategy="rolling",
        max_unavailable=SIZE,
        probe_requests=2,
        heartbeat_interval_ns=2 * SECOND_NS,
    )
    kernel = Kernel()
    hub = TelemetryHub(lambda: kernel.clock_ns)
    with recording(hub):
        controller = FleetController(kernel, app, policy, size=SIZE)
        controller.spawn_fleet()
        RolloutExecutor(controller).run()
        supervisor = FleetSupervisor(controller)
        assert controller.pool is not None

        events = [
            TimelineEvent(
                at_ns=second * SECOND_NS, label=f"tick-{second}",
                action=supervisor.tick,
            )
            for second in range(2, DURATION, 2)
        ] + [
            TimelineEvent(
                at_ns=int(2.5 * SECOND_NS), label="chaos",
                action=lambda: inject_chaos(controller),
            )
        ]
        plan = FaultPlan(seed=seed).arm(
            "fleet.instance_crash", "transient", on_call=2, times=1
        )
        with plan:
            run_request_timeline(
                kernel,
                lambda: app.wanted_request(kernel, controller.frontend_port),
                duration_ns=DURATION * SECOND_NS,
                events=events,
                failover_meter=lambda: controller.pool.total_failovers,
            )
            for __ in range(8):
                if supervisor.settled:
                    break
                kernel.clock_ns += policy.heartbeat_interval_ns
                supervisor.tick()
    return hub, controller, supervisor


class TestFleetReconstruction:
    def setup_method(self):
        self.hub, self.controller, self.supervisor = _run_fleet(seed=7)
        self.summary = summarize_events(self.hub.events)

    def test_crash_and_recovery_happened(self):
        # the scenario is only meaningful if chaos actually fired
        assert self.summary["kinds"].get("health", 0) > 0
        assert any(o.succeeded for o in self.supervisor.recoveries)

    def test_traps_match_live_counters(self):
        live = {
            instance.name: instance.traps_seen
            for instance in self.controller.instances
        }
        assert self.summary["traps"] == live

    def test_failover_total_matches_pool(self):
        assert self.controller.pool is not None
        assert (
            self.summary["failovers"]["total"]
            == self.controller.pool.total_failovers
        )

    def test_dispatch_by_port_matches_pool(self):
        assert self.controller.pool is not None
        live = {
            str(port): count
            for port, count in sorted(self.controller.pool.dispatched.items())
            if count
        }
        assert self.summary["dispatch"]["by_port"] == live

    def test_rewrite_sessions_match_engine_history(self):
        for instance in self.controller.instances:
            recon = self.summary["rewrites"][instance.name]
            assert recon["committed"] == len(instance.engine.history)
            assert recon["total_ns"] == sum(
                report.total_ns for report in instance.engine.history
            )

    def test_status_reads_from_registry_and_matches_pool(self):
        with recording(self.hub):
            status = self.controller.status()
        assert self.controller.pool is not None
        assert status["pool"]["dispatched"] == dict(
            self.controller.pool.dispatched
        )

    def test_status_includes_supervision_when_attached(self):
        status = self.controller.status()
        assert status["supervision"]["settled"] is True
        assert set(status["supervision"]["health"]) == {
            instance.name for instance in self.controller.instances
        }

    def test_prometheus_snapshot_round_trips(self):
        from repro.telemetry import parse_prometheus

        values = parse_prometheus(prometheus_snapshot(self.hub.registry))
        total = sum(
            value for key, value in values.items()
            if key.startswith("dynacut_dispatch_total")
        )
        assert self.controller.pool is not None
        assert total == sum(self.controller.pool.dispatched.values())

    def test_span_tree_covers_customize_stages(self):
        spans = self.summary["spans"]
        assert spans["customize"]["count"] == SIZE
        assert spans["customize.rewrite"]["count"] == SIZE
        assert spans["customize.checkpoint"]["errors"] == 0


class TestSeededDeterminism:
    def test_same_seed_byte_identical_exports(self):
        hub1, __, __ = _run_fleet(seed=11)
        hub2, __, __ = _run_fleet(seed=11)
        assert to_jsonl(hub1.events) == to_jsonl(hub2.events)
        assert prometheus_snapshot(hub1.registry) == (
            prometheus_snapshot(hub2.registry)
        )


class TestTelemetryCli:
    def _events_file(self, tmp_path):
        hub = TelemetryHub(lambda: 0)
        hub.emit("dispatch", "balanced", labels={"port": 9000})
        hub.emit("traps", "sync", labels={"instance": "a"}, total=2)
        path = tmp_path / "events.jsonl"
        path.write_text(to_jsonl(hub))
        return path

    def test_report_mode_rebuilds_from_jsonl(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        assert telemetry_cli.main(["report", str(path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["traps"] == {"a": 2}
        assert summary["dispatch"]["total"] == 1

    def test_report_round_trip_equals_summarize(self, tmp_path, capsys):
        path = self._events_file(tmp_path)
        telemetry_cli.main(["report", str(path)])
        printed = json.loads(capsys.readouterr().out)
        direct = summarize_events(read_jsonl(path.read_text()))
        assert printed == direct

    def test_check_mode_accepts_valid_snapshot(self, tmp_path, capsys):
        hub = TelemetryHub(lambda: 0)
        hub.count("requests_total", port=1)
        path = tmp_path / "snap.prom"
        path.write_text(prometheus_snapshot(hub.registry))
        assert telemetry_cli.main(["check", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_mode_rejects_malformed_snapshot(self, tmp_path, capsys):
        path = tmp_path / "bad.prom"
        path.write_text("no_type_header 1\n")
        assert telemetry_cli.main(["check", str(path)]) == 1
        assert "MALFORMED" in capsys.readouterr().out

    def test_check_mode_rejects_empty_snapshot(self, tmp_path):
        path = tmp_path / "empty.prom"
        path.write_text("")
        assert telemetry_cli.main(["check", str(path)]) == 1

    def test_run_mode_rejects_short_duration(self, tmp_path):
        import pytest

        with pytest.raises(SystemExit):
            telemetry_cli.main(
                ["run", "--duration", "10",
                 "--output", str(tmp_path / "out.json")]
            )
