"""Tests for the MiniC lexer and parser."""

from __future__ import annotations

import pytest

from repro.minic import LexError, ParseError, TokenKind, parse, tokenize
from repro.minic.ast import (
    BinaryExpr,
    CallExpr,
    IfStmt,
    NumberExpr,
    StringExpr,
    SwitchStmt,
    WhileStmt,
)


class TestLexer:
    def test_keywords_vs_idents(self):
        tokens = tokenize("while whilex")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT

    def test_numbers(self):
        tokens = tokenize("42 0x1F 'A' '\\n'")
        assert [t.value for t in tokens[:-1]] == [42, 31, 65, 10]

    def test_string_with_escapes(self):
        (token, __) = tokenize(r'"a\tb"')
        assert token.value == "a\tb"

    def test_line_comment(self):
        tokens = tokenize("a // comment\nb")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_block_comment_tracks_lines(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2

    def test_maximal_munch_operators(self):
        tokens = tokenize("a<<b <= == &&")
        values = [t.value for t in tokens[:-1]]
        assert values == ["a", "<<", "b", "<=", "==", "&&"]

    @pytest.mark.parametrize("bad", ['"unterminated', "'ab'", "`", "/* open"])
    def test_errors(self, bad):
        with pytest.raises(LexError):
            tokenize(bad)


class TestParser:
    def test_function_and_params(self):
        program = parse("func f(a, b) { return a + b; }")
        (func,) = program.functions
        assert func.name == "f"
        assert func.params == ("a", "b")

    def test_precedence(self):
        program = parse("func f() { return 1 + 2 * 3; }")
        ret = program.functions[0].body[0]
        expr = ret.value
        assert isinstance(expr, BinaryExpr) and expr.op == "+"
        assert isinstance(expr.right, BinaryExpr) and expr.right.op == "*"

    def test_parentheses_override(self):
        program = parse("func f() { return (1 + 2) * 3; }")
        expr = program.functions[0].body[0].value
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryExpr) and expr.left.op == "+"

    def test_globals_and_consts(self):
        program = parse(
            'const N = 4;\nvar g = 7;\nvar s = "hi";\nvar arr[32];\n'
            "func main() { return N; }"
        )
        assert program.constants["N"] == 4
        scalar, string, array = program.globals
        assert isinstance(scalar.init, NumberExpr) and scalar.init.value == 7
        assert isinstance(string.init, StringExpr)
        assert array.size == 32

    def test_negative_const(self):
        program = parse("const M = -3;\nfunc main() { return M; }")
        assert program.constants["M"] == -3

    def test_extern(self):
        program = parse("extern func strlen;\nfunc main() { return strlen(0); }")
        assert program.externs == ["strlen"]

    def test_if_else_chain(self):
        program = parse(
            "func f(x) { if (x == 1) { return 1; } else if (x == 2) "
            "{ return 2; } else { return 3; } }"
        )
        stmt = program.functions[0].body[0]
        assert isinstance(stmt, IfStmt)
        assert isinstance(stmt.else_body[0], IfStmt)

    def test_while_with_break_continue(self):
        program = parse(
            "func f() { while (1) { if (1) { break; } continue; } return 0; }"
        )
        assert isinstance(program.functions[0].body[0], WhileStmt)

    def test_switch_with_const_cases(self):
        program = parse(
            "const A = 10;\n"
            "func f(x) { switch (x) { case A: return 1; case 'Z': return 2; "
            "default: return 3; } return 0; }"
        )
        stmt = program.functions[0].body[0]
        assert isinstance(stmt, SwitchStmt)
        assert [c.value for c in stmt.cases] == [10, 90]
        assert stmt.default is not None

    def test_index_expression_and_assignment(self):
        program = parse("func f(p) { p[0] = p[1] + 1; return 0; }")
        assert program.functions[0].body[0].__class__.__name__ == "IndexAssignStmt"

    def test_call_with_index_argument_reparses(self):
        program = parse("func f(p) { g(p[2]); return 0; }")
        stmt = program.functions[0].body[0]
        assert isinstance(stmt.expr, CallExpr)

    @pytest.mark.parametrize(
        "bad",
        [
            "func f( { }",
            "func f() { return 1 }",             # missing semicolon
            "var x[4] = 3;",                     # array initializer
            "func f() { case 1: ; }",            # case outside switch
            "func f(a,b,c,d,e,f2,g) { return 0; }",  # 7 params
            "func f() { switch (1) { what: } }",
            "99;",                               # junk at top level
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)
