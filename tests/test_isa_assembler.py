"""Tests for the VM64 assembler."""

from __future__ import annotations

import pytest

from repro.binfmt import RelocType
from repro.isa import AssemblyError, assemble, decode


def asm(text: str):
    return assemble(text, "t.o")


class TestInstructions:
    def test_simple_text(self):
        module = asm("movi r1, 5\nmov r2, r1\nret\n")
        text = module.sections["text"]
        first = decode(bytes(text))
        assert first.mnemonic == "movi"
        assert first.operands == (1, 5)

    def test_register_aliases(self):
        module = asm("mov sp, fp\n")
        ins = decode(bytes(module.sections["text"]))
        assert ins.operands == (15, 14)

    def test_hex_and_char_immediates(self):
        module = asm("movi r0, 0x10\nmovi r1, 'A'\n")
        text = bytes(module.sections["text"])
        assert decode(text).operands == (0, 0x10)
        assert decode(text, 10).operands == (1, 65)

    def test_negative_immediate(self):
        module = asm("addi r0, -8\n")
        assert decode(bytes(module.sections["text"])).operands == (0, -8)

    def test_memory_operands(self):
        module = asm("ld64 r1, [r2+16]\nst8 [r3-4], r4\nld8 r5, [r6]\n")
        text = bytes(module.sections["text"])
        ld = decode(text)
        assert ld.mnemonic == "ld64" and ld.operands == (1, 2, 16)
        st = decode(text, ld.length)
        assert st.mnemonic == "st8" and st.operands == (3, 4, -4)
        ld8 = decode(text, ld.length + st.length)
        assert ld8.operands == (5, 6, 0)

    def test_branch_creates_pcrel_reloc(self):
        module = asm("start:\n  jmp start\n")
        (reloc,) = module.relocations
        assert reloc.type is RelocType.PCREL32
        assert reloc.symbol == "start"
        assert reloc.offset == 1  # rel32 field of the 5-byte jmp

    def test_movi_symbol_creates_abs64_reloc(self):
        module = asm("movi r1, @target\n.section data\ntarget: .quad 0\n")
        (reloc,) = module.relocations
        assert reloc.type is RelocType.ABS64
        assert reloc.symbol == "target"
        assert reloc.offset == 2  # after opcode + reg byte

    def test_symbol_ref_with_addend(self):
        module = asm("movi r1, @buf+16\n.section bss\nbuf: .space 32\n")
        (reloc,) = module.relocations
        assert reloc.addend == 16


class TestLabelsAndSymbols:
    def test_label_offsets(self):
        module = asm("a:\n  nop\nb:\n  nop\n  nop\nc:\n")
        assert module.symbols["a"].offset == 0
        assert module.symbols["b"].offset == 1
        assert module.symbols["c"].offset == 3

    def test_global_directive(self):
        module = asm(".global main\nmain:\n  ret\n")
        assert module.symbols["main"].is_global

    def test_local_by_default(self):
        module = asm("helper:\n  ret\n")
        assert not module.symbols["helper"].is_global

    def test_function_vs_local_labels(self):
        module = asm("f:\n  nop\n_Lloop_1:\n  ret\n")
        assert module.symbols["f"].is_function
        assert not module.symbols["_Lloop_1"].is_function

    def test_marker_directive(self):
        module = asm("f:\n  nop\n.marker landing\n  ret\n")
        sym = module.symbols["landing"]
        assert sym.offset == 1
        assert not sym.is_function

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            asm("x:\nx:\n")

    def test_label_then_instruction_same_line(self):
        module = asm("go: nop\n")
        assert module.symbols["go"].offset == 0
        assert module.section_size("text") == 1


class TestDirectives:
    def test_byte_and_quad(self):
        module = asm(".section data\n.byte 1, 2, 0xFF\n.quad 0x1122334455667788\n")
        data = bytes(module.sections["data"])
        assert data[:3] == b"\x01\x02\xff"
        assert data[3:11] == bytes.fromhex("8877665544332211")

    def test_asciiz_with_escapes(self):
        module = asm('.section rodata\n.asciiz "hi\\n"\n')
        assert bytes(module.sections["rodata"]) == b"hi\n\x00"

    def test_ascii_no_terminator(self):
        module = asm('.section rodata\n.ascii "ab"\n')
        assert bytes(module.sections["rodata"]) == b"ab"

    def test_string_with_comment_chars_inside(self):
        module = asm('.section rodata\n.asciiz "a;b#c"\n')
        assert bytes(module.sections["rodata"]) == b"a;b#c\x00"

    def test_space_in_bss(self):
        module = asm(".section bss\nbuf: .space 100\n")
        assert module.bss_size == 100
        assert module.symbols["buf"].section == "bss"

    def test_align_text_pads_with_nop(self):
        module = asm("nop\n.align 8\nhere:\n")
        assert module.symbols["here"].offset == 8
        assert bytes(module.sections["text"][1:8]) == b"\x90" * 7

    def test_quad_symbol_reference(self):
        module = asm(".section data\ntable: .quad @f, 0\n.section text\nf: ret\n")
        (reloc,) = module.relocations
        assert reloc.section == "data"
        assert reloc.symbol == "f"

    def test_comments_stripped(self):
        module = asm("; full line\nnop ; trailing\n# hash comment\n")
        assert module.section_size("text") == 1


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "frobnicate r1\n",             # unknown mnemonic
            "movi r1\n",                   # missing operand
            "mov r99, r1\n",               # bad register
            ".section nowhere\n",          # unknown section
            ".unknowndirective 3\n",
            '.asciiz nope\n',              # unquoted string
            ".section data\nnop\n",        # instruction outside text
            "ld64 r1, [qq+2]\n",           # bad base register
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(AssemblyError):
            asm(source)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            asm("nop\nbadop r1\n")
        assert excinfo.value.line_no == 2
