"""Unit tests for the DynaScope telemetry layer.

Covers the metrics registry, the span tracer, the hub (label scopes,
event stream, clock binding), the ambient module-level API, and both
exporters — including the determinism and reconstruction properties
the observability layer promises.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    SpanTracer,
    TelemetryError,
    TelemetryEvent,
    TelemetryHub,
    labelset,
    parse_prometheus,
    prometheus_snapshot,
    read_jsonl,
    recording,
    summarize_events,
    to_jsonl,
)


class TestLabelSet:
    def test_sorted_and_stringified(self):
        assert labelset({"port": 9000, "app": "x"}) == (
            ("app", "x"), ("port", "9000"),
        )

    def test_order_insensitive(self):
        assert labelset({"a": 1, "b": 2}) == labelset({"b": 2, "a": 1})


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("requests", port=1).inc()
        reg.counter("requests", port=1).inc(2)
        reg.counter("requests", port=2).inc()
        assert reg.counter_value("requests", port=1) == 3
        assert reg.counter_value("requests", port=2) == 1
        assert reg.counter_value("requests", port=3) == 0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1)

    def test_sum_counters_over_family(self):
        reg = MetricsRegistry()
        reg.counter("hits", instance="a").inc(2)
        reg.counter("hits", instance="b").inc(3)
        reg.counter("other").inc(100)
        assert reg.sum_counters("hits") == 5

    def test_counters_by_label(self):
        reg = MetricsRegistry()
        reg.counter("dispatch", port=9000).inc(4)
        reg.counter("dispatch", port=9001).inc(1)
        assert reg.counters_by_label("dispatch", "port") == {
            "9000": 4, "9001": 1,
        }

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("depth").add(-1)
        assert reg.gauge_value("depth") == 2

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", bounds=(10, 100))
        for value in (5, 50, 500):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 555
        assert hist.min == 5
        assert hist.max == 500
        assert hist.mean == 185
        assert hist.cumulative_buckets() == [
            ("10", 1), ("100", 2), ("+Inf", 3),
        ]

    def test_time_series_records_in_order(self):
        reg = MetricsRegistry()
        series = reg.series("rps", instance="a")
        series.record(1_000, 10.0)
        series.record(2_000, 12.0)
        assert series.last == 12.0
        assert series.points(scale_x=0.001) == [(1.0, 10.0), (2.0, 12.0)]

    def test_series_matching_sorted(self):
        reg = MetricsRegistry()
        reg.series("rps", instance="b").record(0, 1)
        reg.series("rps", instance="a").record(0, 2)
        labels = [dict(s.labels)["instance"] for s in reg.series_matching("rps")]
        assert labels == ["a", "b"]

    def test_snapshot_is_sorted_and_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", x=1).inc()
        reg.histogram("h").observe(7)
        snap = reg.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])
        json.dumps(snap)


class TestSpanTracer:
    def test_nesting_parent_and_depth(self):
        clock = {"t": 0}
        tracer = SpanTracer(lambda: clock["t"])
        with tracer.span("outer"):
            clock["t"] = 10
            with tracer.span("inner"):
                clock["t"] = 25
        inner, outer = tracer.finished
        assert inner.parent == "outer" and inner.depth == 1
        assert inner.start_ns == 10 and inner.duration_ns == 15
        assert outer.parent is None and outer.duration_ns == 25

    def test_exception_closes_span_with_error_status(self):
        tracer = SpanTracer(lambda: 0)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.status == "error:RuntimeError"
        assert span.end_ns is not None

    def test_mid_span_attributes(self):
        tracer = SpanTracer(lambda: 0)
        with tracer.span("stage") as span:
            span.set("pages", 4)
        assert tracer.finished[0].attrs == {"pages": 4}


class TestHub:
    def test_emit_uses_bound_clock(self):
        clock = {"t": 42}
        hub = TelemetryHub(lambda: clock["t"])
        event = hub.emit("journal", "begin")
        assert event.clock_ns == 42
        clock["t"] = 43
        assert hub.emit("journal", "commit").clock_ns == 43

    def test_label_scope_merges_into_everything(self):
        hub = TelemetryHub(lambda: 0)
        with hub.labels(instance="web-0"):
            hub.count("traps_total")
            event = hub.emit("traps", "sync", total=1)
        assert event.label("instance") == "web-0"
        assert hub.registry.counter_value("traps_total", instance="web-0") == 1

    def test_nested_scopes_merge_and_unwind(self):
        hub = TelemetryHub(lambda: 0)
        with hub.labels(instance="a"):
            with hub.labels(phase="commit"):
                assert hub.active_labels() == {
                    "instance": "a", "phase": "commit",
                }
            assert hub.active_labels() == {"instance": "a"}
        assert hub.active_labels() == {}

    def test_finished_span_becomes_event_and_histogram(self):
        clock = {"t": 0}
        hub = TelemetryHub(lambda: clock["t"])
        with hub.span("customize"):
            clock["t"] = 5_000_000
        (event,) = [e for e in hub.events if e.kind == "span"]
        assert event.name == "customize"
        assert event.field("duration_ns") == 5_000_000
        hist = hub.registry.histogram("span_ns", span="customize")
        assert hist.count == 1

    def test_event_json_round_trip(self):
        hub = TelemetryHub(lambda: 7)
        original = hub.emit(
            "rewrite", "report", labels={"instance": "i"}, cost=3,
        )
        clone = TelemetryEvent.from_dict(json.loads(original.to_json()))
        assert clone == original


class TestAmbientApi:
    def test_helpers_are_noops_without_hub(self):
        assert telemetry.hub() is None
        telemetry.count("nothing")
        telemetry.emit("journal", "begin")
        telemetry.sample("s", 0, 1.0)
        with telemetry.span("quiet"):
            pass
        with telemetry.label_scope(instance="x"):
            pass

    def test_recording_installs_and_removes(self):
        hub = TelemetryHub(lambda: 0)
        with recording(hub):
            assert telemetry.hub() is hub
            telemetry.count("seen")
        assert telemetry.hub() is None
        assert hub.registry.counter_value("seen") == 1

    def test_double_install_raises(self):
        first, second = TelemetryHub(), TelemetryHub()
        with recording(first):
            with pytest.raises(TelemetryError):
                with recording(second):
                    pass


def _recorded_hub() -> TelemetryHub:
    clock = {"t": 0}
    hub = TelemetryHub(lambda: clock["t"])
    with hub.labels(instance="web-0"):
        hub.count("dispatch_total", port=9000)
        hub.emit("dispatch", "balanced", labels={"port": 9000})
        hub.observe("rewrite_ns", 2_000_000)
        hub.sample("traps_seen", 10, 1.0)
    hub.gauge_set("fleet_size", 4)
    return hub


class TestExporters:
    def test_jsonl_round_trip(self):
        hub = _recorded_hub()
        events = read_jsonl(to_jsonl(hub))
        assert events == hub.events

    def test_jsonl_accepts_hub_or_events(self):
        hub = _recorded_hub()
        assert to_jsonl(hub) == to_jsonl(hub.events)

    def test_prometheus_snapshot_parses(self):
        text = prometheus_snapshot(_recorded_hub().registry)
        values = parse_prometheus(text)
        assert values['dynacut_dispatch_total{instance="web-0",port="9000"}'] == 1
        assert values["dynacut_fleet_size"] == 4
        bucket = 'dynacut_rewrite_ns_bucket{instance="web-0",le="+Inf"}'
        assert values[bucket] == 1

    def test_prometheus_snapshot_is_deterministic(self):
        assert prometheus_snapshot(_recorded_hub().registry) == (
            prometheus_snapshot(_recorded_hub().registry)
        )

    def test_parse_rejects_untyped_sample(self):
        with pytest.raises(ValueError):
            parse_prometheus("lonely_metric 1\n")

    def test_parse_rejects_unclosed_labels(self):
        with pytest.raises(ValueError):
            parse_prometheus('# TYPE m counter\nm{a="b 1\n')

    def test_parse_rejects_malformed_type_header(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE m sideways\nm 1\n")

    def test_empty_registry_renders_empty(self):
        assert prometheus_snapshot(MetricsRegistry()) == ""


class TestSummarizeEvents:
    def test_traps_take_last_value_not_max(self):
        # recovery from a committed image legitimately resets traps_seen
        hub = TelemetryHub(lambda: 0)
        hub.emit("traps", "sync", labels={"instance": "a"}, total=3)
        hub.emit("traps", "sync", labels={"instance": "a"}, total=0)
        assert summarize_events(hub.events)["traps"] == {"a": 0}

    def test_failover_and_dispatch_counted_by_port(self):
        hub = TelemetryHub(lambda: 0)
        for __ in range(3):
            hub.emit("dispatch", "balanced", labels={"port": 9000})
        hub.emit("failover", "routed-around", labels={"port": 9001})
        summary = summarize_events(hub.events)
        assert summary["dispatch"] == {"by_port": {"9000": 3}, "total": 3}
        assert summary["failovers"] == {"by_port": {"9001": 1}, "total": 1}

    def test_rewrite_sessions_aggregated_per_instance(self):
        hub = TelemetryHub(lambda: 0)
        hub.emit(
            "rewrite", "report", labels={"instance": "a"},
            outcome="committed", attempts=1, total_ns=100,
        )
        hub.emit(
            "rewrite", "report", labels={"instance": "a"},
            outcome="rolled-back", attempts=2, total_ns=50,
        )
        summary = summarize_events(hub.events)["rewrites"]["a"]
        assert summary["sessions"] == 2
        assert summary["committed"] == 1
        assert summary["rolled_back"] == 1
        assert summary["attempts"] == 3
        assert summary["total_ns"] == 150

    def test_drift_and_span_sections(self):
        hub = TelemetryHub(lambda: 0)
        hub.emit("drift", "traps", labels={"instance": "a"}, hits=2)
        hub.emit("drift", "triggered", action="ignore")
        hub.emit(
            "span", "customize", duration_ns=10, status="error:Boom",
        )
        summary = summarize_events(hub.events)
        assert summary["drift"] == {"attributed_traps": 2, "triggered": True}
        assert summary["spans"]["customize"]["errors"] == 1
