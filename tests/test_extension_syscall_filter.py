"""§5 extension: dynamic seccomp-style syscall filtering.

The paper's discussion proposes process rewriting as a way to
"dynamically enable/disable seccomp filtering".  These tests cover the
full loop: syscall-aware profiling, installing a post-init allow-list
through a rewrite, SIGSYS enforcement, and *lifting* the filter again
— the dynamic step a static seccomp policy cannot take back.
"""

from __future__ import annotations

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import READY_LINE
from repro.core import (
    DynaCut,
    dropped_syscalls,
    serving_allowlist,
    specialization_report,
)
from repro.kernel import Kernel, Signal, Sys
from repro.tracing import BlockTracer
from repro.workloads import RedisClient

from .helpers import build_minic, run_image


def _profiled_redis():
    kernel = Kernel()
    proc = stage_redis(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: READY_LINE in proc.stdout_text())
    init_trace = tracer.nudge_dump()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "SET a 1", "GET a", "DEL a", "DBSIZE"):
        client.command(cmd)
    serving_trace = tracer.finish()
    return kernel, proc, client, init_trace, serving_trace


class TestSyscallTracing:
    def test_phases_record_different_syscalls(self):
        __, __, __, init_trace, serving_trace = _profiled_redis()
        assert int(Sys.OPEN) in init_trace.syscalls      # config file
        assert int(Sys.BIND) in init_trace.syscalls
        assert int(Sys.RECV) in serving_trace.syscalls
        assert int(Sys.SEND) in serving_trace.syscalls
        dropped = dropped_syscalls(init_trace, serving_trace)
        assert int(Sys.OPEN) in dropped
        assert int(Sys.BIND) in dropped

    def test_trace_text_roundtrip_keeps_syscalls(self):
        __, __, __, init_trace, __ = _profiled_redis()
        from repro.tracing import CoverageTrace

        parsed = CoverageTrace.from_text(init_trace.to_text())
        assert parsed.syscalls == init_trace.syscalls

    def test_specialization_report_names(self):
        __, __, __, init_trace, serving_trace = _profiled_redis()
        report = specialization_report(init_trace, serving_trace)
        assert "OPEN" in report["dropped"]
        assert "RECV" in report["serving_syscalls"]
        assert "EXIT" in report["allowed"]


class TestKernelEnforcement:
    def test_filter_violation_raises_sigsys(self):
        image = build_minic(
            "extern func fork;\nfunc main() { fork(); return 0; }", "forker"
        )
        kernel = Kernel()
        from repro.apps import libc_image

        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        proc = kernel.spawn("forker")
        # install the filter before the program runs at all
        proc.syscall_filter = frozenset({int(Sys.EXIT), int(Sys.WRITE)})
        kernel.run_until(lambda: not proc.alive)
        assert proc.term_signal is Signal.SIGSYS
        assert any(
            e.kind == "seccomp-violation" for e in kernel.security_log
        )

    def test_allowed_syscalls_pass(self):
        image = build_minic(
            'func main() { syscall(2, 1, "ok", 2); return 5; }', "writer"
        )
        kernel = Kernel()
        from repro.apps import libc_image

        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        proc = kernel.spawn("writer")
        proc.syscall_filter = frozenset({1, 2})   # exit, write
        kernel.run_until(lambda: not proc.alive)
        assert proc.exit_code == 5
        assert proc.stdout_text() == "ok"

    def test_no_filter_means_unrestricted(self):
        image = build_minic(
            "extern func getpid;\nfunc main() { return getpid() > 0; }", "free"
        )
        __, proc = run_image(image)
        assert proc.exit_code == 1


class TestDynamicFilterLifecycle:
    def test_post_init_filter_blocks_sensitive_calls(self):
        kernel, proc, client, init_trace, serving_trace = _profiled_redis()
        allowed = serving_allowlist(serving_trace)
        assert int(Sys.FORK) not in allowed
        assert int(Sys.OPEN) not in allowed

        dynacut = DynaCut(kernel)
        dynacut.restrict_syscalls(proc.pid, set(allowed))
        proc = dynacut.restored_process(proc.pid)
        assert proc.syscall_filter == allowed

        # normal service continues under the filter
        assert client.ping()
        assert client.set("k", "v")
        assert client.get("k") == "v"

    def test_filtered_server_dies_on_off_profile_syscall(self):
        kernel, proc, client, init_trace, serving_trace = _profiled_redis()
        # remove CONFIG-file access post-init; then force the server down
        # a path needing open(): the CONFIG GET command never does I/O,
        # so use a filter *without* send to prove enforcement instead
        allowed = set(serving_allowlist(serving_trace))
        allowed.discard(int(Sys.SEND))
        dynacut = DynaCut(kernel)
        dynacut.restrict_syscalls(proc.pid, allowed)
        proc = dynacut.restored_process(proc.pid)
        sock = kernel.connect(REDIS_PORT)
        sock.send("PING\n")
        kernel.run_until(lambda: not proc.alive, max_instructions=2_000_000)
        assert not proc.alive
        assert proc.term_signal is Signal.SIGSYS

    def test_filter_survives_checkpoint_restore(self):
        from repro.criu import checkpoint_tree, restore_tree

        kernel, proc, client, __, serving_trace = _profiled_redis()
        dynacut = DynaCut(kernel)
        allowed = serving_allowlist(serving_trace)
        dynacut.restrict_syscalls(proc.pid, set(allowed))
        proc = dynacut.restored_process(proc.pid)
        checkpoint = checkpoint_tree(kernel, proc.pid)
        (restored,) = restore_tree(kernel, checkpoint)
        assert restored.syscall_filter == allowed

    def test_filter_can_be_lifted_dynamically(self):
        kernel, proc, client, __, serving_trace = _profiled_redis()
        dynacut = DynaCut(kernel)
        dynacut.restrict_syscalls(proc.pid, set(serving_allowlist(serving_trace)))
        proc = dynacut.restored_process(proc.pid)
        assert proc.syscall_filter is not None

        dynacut.restrict_syscalls(proc.pid, None)   # the dynamic lift
        proc = dynacut.restored_process(proc.pid)
        assert proc.syscall_filter is None
        assert client.ping()
