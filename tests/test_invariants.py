"""Cross-cutting invariants over the toolchain and analysis layers.

These don't test single functions; they pin down properties the whole
pipeline relies on (DESIGN.md §6): linked images are internally
consistent, static CFGs partition code soundly, and compiled programs
behave identically before and after a null rewrite.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import build_cfg
from repro.apps import (
    libc_image,
    lighttpd_image,
    nginx_image,
    redis_image,
    spec_image,
)
from repro.apps.spec import benchmark_names
from repro.binfmt import PAGE_SIZE
from repro.criu import checkpoint_tree, restore_tree
from repro.kernel import Kernel

from .helpers import build_minic, run_minic

ALL_IMAGES = [
    libc_image, redis_image, lighttpd_image, nginx_image,
] + [lambda name=name: spec_image(name) for name in benchmark_names()]


class TestImageConsistency:
    def test_segments_do_not_overlap(self):
        for factory in ALL_IMAGES:
            image = factory()
            segments = sorted(image.segments, key=lambda s: s.vaddr)
            for a, b in zip(segments, segments[1:]):
                assert a.vaddr + a.memsize <= b.vaddr, image.name

    def test_segments_page_aligned(self):
        for factory in ALL_IMAGES:
            image = factory()
            for seg in image.segments:
                assert seg.vaddr % PAGE_SIZE == 0, (image.name, seg.name)

    def test_symbols_inside_segments(self):
        for factory in ALL_IMAGES:
            image = factory()
            spans = [(s.vaddr, s.end) for s in image.segments]
            for name, sym in image.symbols.items():
                assert any(lo <= sym.vaddr <= hi for lo, hi in spans), (
                    image.name, name, hex(sym.vaddr)
                )

    def test_plt_entries_inside_plt_segment(self):
        for factory in ALL_IMAGES:
            image = factory()
            if not image.plt_entries:
                continue
            plt = image.segment("plt")
            for name, stub in image.plt_entries.items():
                assert plt.vaddr <= stub < plt.vaddr + len(plt.data), (
                    image.name, name
                )

    def test_dynamic_relocs_point_into_image(self):
        for factory in ALL_IMAGES:
            image = factory()
            spans = [(s.vaddr, s.end) for s in image.segments]
            for reloc in image.dynamic_relocs:
                assert any(lo <= reloc.vaddr < hi for lo, hi in spans), (
                    image.name, hex(reloc.vaddr)
                )

    def test_serialization_roundtrip_everywhere(self):
        for factory in ALL_IMAGES:
            image = factory()
            from repro.binfmt import load_self

            clone = load_self(image.to_bytes())
            assert clone.symbols.keys() == image.symbols.keys()
            assert clone.plt_entries == image.plt_entries
            assert [s.data for s in clone.segments] == [
                s.data for s in image.segments
            ]


class TestCfgSoundness:
    def test_blocks_never_overlap(self):
        for factory in ALL_IMAGES:
            cfg = build_cfg(factory())
            blocks = sorted(cfg.blocks)
            for a, b in zip(blocks, blocks[1:]):
                assert a.end <= b.start, factory().name

    def test_edges_target_leaders(self):
        for factory in ALL_IMAGES:
            cfg = build_cfg(factory())
            leaders = cfg.block_starts()
            for source, successors in cfg.edges.items():
                assert source in leaders
                for target in successors:
                    # direct targets must themselves be discovered blocks
                    assert target in leaders, (factory().name, hex(target))

    def test_function_entries_are_leaders(self):
        for factory in ALL_IMAGES:
            image = factory()
            cfg = build_cfg(image)
            leaders = cfg.block_starts()
            text_start, text_end = image.text_range()
            for name, sym in image.functions().items():
                if text_start <= sym.vaddr < text_end:
                    assert sym.vaddr in leaders, (image.name, name)


class TestNullRewriteTransparency:
    """A checkpoint/restore with no mutation must be invisible to the
    guest program (the identity property every rewrite builds on)."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_compute_result_unchanged(self, seed):
        source = (
            "extern func srand;\nextern func rand_next;\n"
            "func main() {{ srand({seed}); var acc = 0; var i = 0; "
            "while (i < 20) {{ acc = (acc + rand_next()) & 0xffff; "
            "i = i + 1; }} return acc & 0x7f; }}"
        ).format(seed=seed)
        __, proc_a = run_minic(source)
        expected = proc_a.exit_code

        image = build_minic(source, "prog")
        kernel = Kernel()
        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        proc = kernel.spawn("prog")
        kernel.run(max_instructions=500)           # stop mid-computation
        checkpoint = checkpoint_tree(kernel, proc.pid)
        (restored,) = restore_tree(kernel, checkpoint)
        kernel.run_until(lambda: not restored.alive)
        assert restored.exit_code == expected
