"""Semantics tests for the MiniC code generator.

Each test compiles a program, runs it on the simulated kernel, and
checks the exit code or stdout — i.e. these are compiler *correctness*
tests, including hypothesis comparisons against Python's semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.minic import CompileError, compile_source

from .helpers import exit_code_of, run_minic, stdout_of

_small = st.integers(-1000, 1000)


class TestArithmetic:
    @settings(max_examples=25, deadline=None)
    @given(_small, _small)
    def test_add_sub_mul(self, a, b):
        code = exit_code_of(
            f"func main() {{ var r = ({a}) + ({b}) * 2 - ({a}); "
            "if (r == %d) { return 1; } return 0; }" % (a + b * 2 - a)
        )
        assert code == 1

    @settings(max_examples=25, deadline=None)
    @given(_small, st.integers(1, 50))
    def test_div_mod_match_c_semantics(self, a, b):
        quotient = int(a / b)          # C truncates toward zero
        remainder = a - quotient * b
        code = exit_code_of(
            f"func main() {{ if (({a}) / ({b}) == ({quotient}) && "
            f"({a}) % ({b}) == ({remainder})) {{ return 1; }} return 0; }}"
        )
        assert code == 1

    def test_division_by_zero_raises_sigfpe(self):
        __, proc = run_minic("func main() { var z = 0; return 5 / z; }")
        assert proc.term_signal is not None
        assert int(proc.term_signal) == 8  # SIGFPE

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32), st.integers(0, 63))
    def test_shifts(self, a, s):
        expected = ((a << s) & ((1 << 64) - 1)) >> s >> 1
        code = exit_code_of(
            f"func main() {{ var v = ({a}) << ({s}); v = v >> ({s}); "
            f"v = v >> 1; if (v == {expected}) {{ return 1; }} return 0; }}"
        )
        assert code == 1

    def test_bitwise_ops(self):
        assert exit_code_of(
            "func main() { return (0xF0 & 0x3C) | (1 ^ 3); }"
        ) == ((0xF0 & 0x3C) | (1 ^ 3)) & 0xFF

    def test_unary_ops(self):
        assert exit_code_of("func main() { return -(-5); }") == 5
        assert exit_code_of("func main() { return !0 + !7; }") == 1
        assert exit_code_of("func main() { return (~0) & 0xFF; }") == 255


class TestComparisons:
    @settings(max_examples=25, deadline=None)
    @given(_small, _small)
    def test_all_comparison_operators(self, a, b):
        expected = (
            (a == b) + (a != b) * 2 + (a < b) * 4 + (a <= b) * 8
            + (a > b) * 16 + (a >= b) * 32
        )
        code = exit_code_of(
            "func main() { return "
            f"(({a}) == ({b})) + (({a}) != ({b})) * 2 + (({a}) < ({b})) * 4 "
            f"+ (({a}) <= ({b})) * 8 + (({a}) > ({b})) * 16 "
            f"+ (({a}) >= ({b})) * 32; }}"
        )
        assert code == expected

    def test_short_circuit_and(self):
        # the right side would divide by zero if evaluated
        assert exit_code_of(
            "func main() { var z = 0; if (0 && (1 / z)) { return 9; } return 1; }"
        ) == 1

    def test_short_circuit_or(self):
        assert exit_code_of(
            "func main() { var z = 0; if (1 || (1 / z)) { return 1; } return 9; }"
        ) == 1


class TestControlFlow:
    def test_while_loop_sum(self):
        assert exit_code_of(
            "func main() { var s = 0; var i = 1; while (i <= 10) "
            "{ s = s + i; i = i + 1; } return s; }"
        ) == 55

    def test_break_and_continue(self):
        assert exit_code_of(
            "func main() { var s = 0; var i = 0; while (i < 100) { i = i + 1; "
            "if (i % 2 == 0) { continue; } if (i > 9) { break; } s = s + i; } "
            "return s; }"
        ) == 1 + 3 + 5 + 7 + 9

    def test_nested_loops(self):
        assert exit_code_of(
            "func main() { var n = 0; var i = 0; while (i < 5) { var j = 0; "
            "while (j < 5) { if (j == 3) { break; } n = n + 1; j = j + 1; } "
            "i = i + 1; } return n; }"
        ) == 15

    def test_switch_dispatch(self):
        source = (
            "func pick(x) { switch (x) { case 1: return 10; case 2: return 20; "
            "default: return 99; } return 0; }\n"
            "func main() { return pick(1) + pick(2) + pick(7); }"
        )
        assert exit_code_of(source) == 129

    def test_switch_no_fallthrough(self):
        assert exit_code_of(
            "func main() { var r = 0; switch (1) { case 1: r = 1; case 2: "
            "r = r + 100; } return r; }"
        ) == 1

    def test_switch_break(self):
        assert exit_code_of(
            "func main() { switch (5) { case 5: break; default: return 9; } "
            "return 3; }"
        ) == 3

    def test_implicit_return_zero(self):
        assert exit_code_of("func main() { var x = 3; }") == 0


class TestFunctions:
    def test_recursion(self):
        assert exit_code_of(
            "func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n"
            "func main() { return fact(5); }"
        ) == 120

    def test_six_arguments(self):
        assert exit_code_of(
            "func f(a, b, c, d, e, g) { return a + b * 2 + c * 3 + d * 4 "
            "+ e * 5 + g * 6; }\nfunc main() { return f(1, 1, 1, 1, 1, 1); }"
        ) == 21

    def test_mutual_recursion(self):
        assert exit_code_of(
            "func is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }\n"
            "func is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }\n"
            "func main() { return is_even(10) * 2 + is_odd(7); }"
        ) == 3

    def test_function_pointer_call(self):
        assert exit_code_of(
            "func ten() { return 10; }\nfunc twenty() { return 20; }\n"
            "var fp;\nfunc main() { fp = ten; var a = fp; var r = a(); "
            "fp = twenty; a = fp; return r + a(); }"
        ) == 30

    def test_argument_evaluation_order(self):
        # arguments are evaluated left to right
        assert exit_code_of(
            "var n = 0;\nfunc bump() { n = n + 1; return n; }\n"
            "func pair(a, b) { return a * 10 + b; }\n"
            "func main() { return pair(bump(), bump()); }"
        ) == 12


class TestMemoryAndData:
    def test_local_array_bytes(self):
        assert exit_code_of(
            "func main() { var buf[16]; buf[0] = 65; buf[1] = buf[0] + 1; "
            "return buf[1]; }"
        ) == 66

    def test_global_scalar_and_array(self):
        assert exit_code_of(
            "var g = 5;\nvar arr[8];\n"
            "func main() { arr[3] = g + 2; g = arr[3]; return g; }"
        ) == 7

    def test_load_store_64(self):
        assert exit_code_of(
            "var slab[64];\nfunc main() { store64(slab + 8, 123456789); "
            "return load64(slab + 8) == 123456789; }"
        ) == 1

    def test_index_through_pointer_param(self):
        assert exit_code_of(
            "var data[8];\nfunc second(p) { return p[1]; }\n"
            "func main() { data[1] = 42; return second(data); }"
        ) == 42

    def test_string_literal_interning(self):
        source = 'func main() { return load8("AB") + load8("AB" + 0); }'
        assert exit_code_of(source) == 130

    def test_global_string_initializer(self):
        assert exit_code_of(
            'var msg = "Q";\nfunc main() { return load8(msg); }'
        ) == ord("Q")

    def test_scalar_redeclaration_in_branches(self):
        assert exit_code_of(
            "func main() { if (1) { var t = 3; return t; } else { var t = 4; "
            "return t; } }"
        ) == 3


class TestRuntimeIntegration:
    def test_stdout_via_libc(self):
        out = stdout_of(
            'extern func println;\nfunc main() { println("hello"); return 0; }'
        )
        assert out == "hello\n"

    def test_argv_passed_to_main(self):
        __, proc = run_minic(
            "extern func atoi;\n"
            "func main(argc, argv) { if (argc < 2) { return 0; } "
            "return atoi(load64(argv + 8)); }",
            argv=["prog", "37"],
        )
        assert proc.exit_code == 37

    def test_inline_asm(self):
        assert exit_code_of(
            'func main() { var r = 0; asm("movi r0, 5"); '
            "asm(\"st64 [fp-8], r0\"); return r; }"
        ) == 5

    def test_exit_code_truncated_to_byte(self):
        assert exit_code_of("func main() { return 256 + 7; }") == 7


class TestCompileErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "func main() { return nothere; }",
            "func main() { nothere = 1; return 0; }",
            "func main() { var a[4]; a = 3; return 0; }",
            "func main() { break; }",
            "func main() { continue; }",
            "func f() { return 0; }\nfunc main() { return f(1,2,3,4,5,6,7); }",
            "func main() { return load8(); }",
            "func main() { return syscall(); }",
            "var x = 1;\nvar x = 2;\nfunc main() { return 0; }",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(CompileError):
            compile_source(source, "bad.o")

    def test_missing_main_for_executable(self):
        with pytest.raises(CompileError):
            compile_source("func helper() { return 1; }", "nomain.o", entry=True)

    def test_library_without_main_ok(self):
        module = compile_source("func helper() { return 1; }", "lib.o", entry=False)
        assert "helper" in module.symbols
