"""Kernel edge cases: signals in handlers, odd syscall arguments, poll."""

from __future__ import annotations

from repro.apps import libc_image
from repro.kernel import Kernel, Signal

from .helpers import build_minic, run_image, run_minic


class TestSignalEdgeCases:
    def test_fault_inside_handler_terminates(self):
        source = r"""
extern func sigaction;
func on_trap(sig, frame, fault) {
    return load8(0x10);      // the handler itself faults
}
func main() {
    sigaction(5, on_trap);
    asm("int3");
    return 0;
}
"""
        __, proc = run_minic(source)
        assert not proc.alive
        assert proc.term_signal is Signal.SIGSEGV

    def test_handler_uninstall(self):
        source = r"""
extern func sigaction;
func on_trap(sig, frame, fault) { return 0; }
func main() {
    sigaction(5, on_trap);
    asm("int3");             // caught
    syscall(16, 5, 0, 0);    // uninstall (handler = 0)
    asm("int3");             // default disposition now: die
    return 7;
}
"""
        __, proc = run_minic(source)
        assert not proc.alive
        assert proc.term_signal is Signal.SIGTRAP

    def test_fork_child_inherits_sigactions(self):
        source = r"""
extern func sigaction; extern func fork; extern func waitpid;
func on_trap(sig, frame, fault) { return 0; }
func main() {
    sigaction(5, on_trap);
    var pid = fork();
    if (pid == 0) {
        asm("int3");         // caught via the inherited handler
        return 21;
    }
    waitpid(pid);
    return 4;
}
"""
        kernel, proc = run_minic(source)
        assert proc.exit_code == 4
        child = next(p for p in kernel.processes.values() if p.ppid == proc.pid)
        assert child.exit_code == 21
        assert child.term_signal is None

    def test_invalid_signal_number_rejected(self):
        __, proc = run_minic(
            "func main() { return syscall(16, 200, 4096, 0) < 0; }"
        )
        assert proc.exit_code == 1

    def test_kill_unknown_pid_is_esrch(self):
        __, proc = run_minic(
            "extern func kill;\nfunc main() { return kill(9999, 15) < 0; }"
        )
        assert proc.exit_code == 1


class TestSyscallArgumentEdges:
    def test_write_with_bad_pointer_is_efault(self):
        __, proc = run_minic(
            "func main() { return syscall(2, 1, 0x10, 4) < 0; }"
        )
        assert proc.exit_code == 1

    def test_unknown_syscall_is_enosys(self):
        __, proc = run_minic("func main() { return syscall(77) < 0; }")
        assert proc.exit_code == 1

    def test_mmap_zero_length_rejected(self):
        __, proc = run_minic(
            "extern func mmap;\nfunc main() { return mmap(0, 0, 3) < 0; }"
        )
        assert proc.exit_code == 1

    def test_poll_zero_count_rejected(self):
        __, proc = run_minic(
            "extern func poll;\nvar fds[8];\n"
            "func main() { return poll(fds, 0) < 0; }"
        )
        assert proc.exit_code == 1

    def test_write_zero_length_ok(self):
        __, proc = run_minic(
            'func main() { return syscall(2, 1, "x", 0) == 0; }'
        )
        assert proc.exit_code == 1


class TestPollSemantics:
    def test_poll_returns_ready_index(self):
        source = r"""
extern func socket; extern func bind; extern func listen;
extern func accept; extern func poll; extern func println;
extern func recv; extern func send;
var fds[16];
func main() {
    var a = socket(); bind(a, 5001); listen(a, 1);
    var b = socket(); bind(b, 5002); listen(b, 1);
    println("up");
    store64(fds, a);
    store64(fds + 8, b);
    var idx = poll(fds, 2);       // which listener got the connection?
    var conn = accept(load64(fds + 8 * idx));
    var buf[8];
    recv(conn, buf, 7);
    send(conn, "!", 1);
    return idx;
}
"""
        image = build_minic(source, "poller")
        kernel = Kernel()
        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        proc = kernel.spawn("poller")
        kernel.run_until(lambda: "up" in proc.stdout_text())
        sock = kernel.connect(5002)          # connect to the SECOND listener
        sock.send(b"hello")
        kernel.run_until(lambda: not proc.alive)
        assert proc.exit_code == 1           # index 1 == the 5002 listener

    def test_poll_wakes_on_peer_close(self):
        source = r"""
extern func socket; extern func bind; extern func listen;
extern func accept; extern func poll; extern func recv;
extern func println;
var fds[8];
func main() {
    var s = socket(); bind(s, 5003); listen(s, 1);
    println("up");
    var c = accept(s);
    store64(fds, c);
    poll(fds, 1);                 // must wake on EOF, not only on data
    var buf[4];
    var n = recv(c, buf, 4);
    if (n == 0) { return 33; }    // clean EOF observed
    return 1;
}
"""
        image = build_minic(source, "eofpoll")
        kernel = Kernel()
        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        proc = kernel.spawn("eofpoll")
        kernel.run_until(lambda: "up" in proc.stdout_text())
        sock = kernel.connect(5003)
        kernel.run(max_instructions=100_000)   # let accept complete
        sock.close()
        kernel.run_until(lambda: not proc.alive)
        assert proc.exit_code == 33
