"""Unit and property tests for VM64 instruction encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    INSTRUCTION_SPECS,
    INT3_OPCODE,
    Instruction,
    Operand,
    SPEC_BY_MNEMONIC,
    decode,
    encode,
    encode_fields,
)
from repro.isa.encoding import DecodeError, EncodeError


def _operand_strategy(kind: Operand):
    if kind is Operand.REG:
        return st.integers(0, 15)
    if kind is Operand.IMM64:
        return st.integers(0, (1 << 64) - 1)
    return st.integers(-(1 << 31), (1 << 31) - 1)


@st.composite
def instructions(draw):
    spec = draw(st.sampled_from(INSTRUCTION_SPECS))
    operands = tuple(draw(_operand_strategy(kind)) for kind in spec.operands)
    return Instruction(spec, operands)


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_roundtrip(self, instruction):
        data = encode(instruction)
        decoded = decode(data)
        assert decoded.spec is instruction.spec
        assert decoded.operands == instruction.operands

    @given(instructions())
    def test_encoded_length_matches_spec(self, instruction):
        assert len(encode(instruction)) == instruction.spec.length

    @given(instructions(), st.binary(min_size=0, max_size=16))
    def test_trailing_bytes_ignored(self, instruction, suffix):
        data = encode(instruction) + suffix
        decoded = decode(data)
        assert decoded.operands == instruction.operands


class TestInt3:
    def test_int3_is_one_byte_0xcc(self):
        spec = SPEC_BY_MNEMONIC["int3"]
        assert spec.opcode == INT3_OPCODE == 0xCC
        assert spec.length == 1
        assert encode_fields(spec, ()) == b"\xcc"

    def test_single_0xcc_byte_decodes_to_int3(self):
        assert decode(b"\xcc").mnemonic == "int3"


class TestDecodeErrors:
    def test_empty_stream(self):
        with pytest.raises(DecodeError):
            decode(b"")

    @pytest.mark.parametrize("opcode", [0x7F, 0xFE, 0x2A, 0xAB])
    def test_unknown_opcode(self, opcode):
        with pytest.raises(DecodeError):
            decode(bytes([opcode]))

    def test_truncated_operands(self):
        movi = encode_fields(SPEC_BY_MNEMONIC["movi"], (3, 42))
        with pytest.raises(DecodeError):
            decode(movi[:-1])

    def test_register_out_of_range(self):
        raw = bytes([SPEC_BY_MNEMONIC["mov"].opcode, 16, 0])
        with pytest.raises(DecodeError):
            decode(raw)

    def test_offset_decoding(self):
        nop = SPEC_BY_MNEMONIC["nop"]
        data = b"\x00\x00" + encode_fields(nop, ())
        assert decode(data, offset=2).mnemonic == "nop"


class TestEncodeErrors:
    def test_wrong_operand_count(self):
        with pytest.raises(EncodeError):
            encode_fields(SPEC_BY_MNEMONIC["mov"], (1,))

    def test_register_out_of_range(self):
        with pytest.raises(EncodeError):
            encode_fields(SPEC_BY_MNEMONIC["push"], (16,))

    def test_imm32_overflow(self):
        with pytest.raises(EncodeError):
            encode_fields(SPEC_BY_MNEMONIC["addi"], (0, 1 << 31))


class TestSpecTable:
    def test_opcodes_unique(self):
        opcodes = [spec.opcode for spec in INSTRUCTION_SPECS]
        assert len(opcodes) == len(set(opcodes))

    def test_mnemonics_unique(self):
        names = [spec.mnemonic for spec in INSTRUCTION_SPECS]
        assert len(names) == len(set(names))

    def test_operand_sizes(self):
        assert Operand.REG.size == 1
        assert Operand.IMM32.size == 4
        assert Operand.REL32.size == 4
        assert Operand.IMM64.size == 8

    def test_instruction_str_smoke(self):
        movi = SPEC_BY_MNEMONIC["movi"]
        text = str(Instruction(movi, (1, 0x1234)))
        assert "movi" in text and "r1" in text


class TestInstructionLengthAt:
    def test_length_from_opcode_only(self):
        from repro.isa.encoding import instruction_length_at

        movi = encode_fields(SPEC_BY_MNEMONIC["movi"], (1, 7))
        stream = b"\x00" * 4 + movi
        assert instruction_length_at(stream, 4) == 10
        assert instruction_length_at(b"\xcc") == 1

    def test_errors(self):
        from repro.isa.encoding import instruction_length_at

        with pytest.raises(DecodeError):
            instruction_length_at(b"")
        with pytest.raises(DecodeError):
            instruction_length_at(b"\xfe")
