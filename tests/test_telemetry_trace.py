"""Unit tests for DynaTrace: per-request tracing and attribution.

Covers the span-tree construction and incremental phase accounting of
:class:`TraceContext`, trap-window pairing, the ambient no-op API, the
structural-recomputation identity of :func:`attribute_traces`, exact
nearest-rank percentiles, histogram quantiles (registry + Prometheus
round-trip), the structural span IDs of the aggregate
:class:`SpanTracer`, and the driver-level properties: failover-event
attribution and byte-identical same-seed trace exports.
"""

from __future__ import annotations

import pytest

from repro.apps import REDIS_PORT, stage_redis
from repro.kernel import Kernel
from repro.kernel.network import SocketDescriptor
from repro.telemetry import (
    MetricsRegistry,
    RequestTracer,
    SpanTracer,
    TelemetryHub,
    TraceError,
    attribute_traces,
    parse_prometheus,
    percentile,
    prometheus_snapshot,
    quantile_from_buckets,
    read_trace_jsonl,
    recording,
    to_trace_jsonl,
)
from repro.telemetry import trace
from repro.telemetry.trace import leg_phase
from repro.workloads import (
    SECOND_NS,
    RedisClient,
    run_request_timeline,
)


class FakeClock:
    def __init__(self, t: int = 0):
        self.t = t

    def __call__(self) -> int:
        return self.t

    def advance(self, ns: int) -> None:
        self.t += ns


@pytest.fixture(autouse=True)
def _no_leaked_context():
    yield
    assert trace.current() is None


class TestTraceContext:
    def test_phases_sum_to_wall_and_identity_holds(self):
        clock = FakeClock()
        tracer = RequestTracer()
        ctx = tracer.begin(clock, index=0)
        with ctx.stall("rollout-step-0"):
            clock.advance(100)
            trace.note_rewrite(40)
        with ctx.leg("dispatch"):
            with ctx.leg("mesh.hop", shard="host-0"):
                with ctx.aux("route", "route"):
                    clock.advance(5)
                ctx.note_trap_delivered(7, clock.t, 0x400100)
                clock.advance(8)
                ctx.note_trap_returned(7, clock.t)
                clock.advance(30)
        tracer.finish(ctx, ok=True)

        assert ctx.phases == {
            "route": 5, "serve": 30, "hop": 0, "trap": 8,
            "rewrite-stall": 40, "control": 60, "shed": 0,
        }
        assert ctx.wall_ns == 143
        assert ctx.root.attrs["wall_ns"] == ctx.root.attrs["observed_ns"] == 143
        report = attribute_traces(tracer)
        assert report["summary"]["identity_violations"] == 0
        assert report["requests"][0]["phases"] == {
            "route": 5, "serve": 30, "trap": 8,
            "rewrite-stall": 40, "control": 60,
        }

    def test_app_level_error_leg_is_serve_time(self):
        clock = FakeClock()
        tracer = RequestTracer()
        ctx = tracer.begin(clock)
        with ctx.leg("dispatch"):
            with pytest.raises(ValueError):
                with ctx.leg("mesh.hop", shard="host-0"):
                    clock.advance(12)
                    raise ValueError("application-level failure")
            with ctx.leg("mesh.hop", shard="host-1"):
                clock.advance(20)
        tracer.finish(ctx, ok=True)
        # a generic error is not a routing error: both legs are serve
        assert ctx.phases["serve"] == 32
        assert ctx.phases["hop"] == 0
        assert ctx.hops == 0

    def test_routing_error_statuses_classify_as_hop(self):
        assert leg_phase("mesh.hop", "error:NoBackendAvailable") == "hop"
        assert leg_phase("mesh.hop", "error:InjectedFault") == "hop"
        assert leg_phase("mesh.hop", "ok") == "serve"
        assert leg_phase("dispatch", "error:NoBackendAvailable") == "serve"

    def test_leg_wrapping_hops_contributes_no_self_time(self):
        clock = FakeClock()
        tracer = RequestTracer()
        ctx = tracer.begin(clock)
        with ctx.leg("dispatch"):
            clock.advance(3)         # driver-side overhead around the hop
            with ctx.leg("mesh.hop", clock=clock, shard="host-0"):
                clock.advance(50)
            clock.advance(2)
        tracer.finish(ctx, ok=True)
        # the dispatch wrapper spans clock domains: only the hop counts
        assert ctx.phases["serve"] == 50
        assert ctx.wall_ns == 50

    def test_trap_marks_pair_lifo_per_pid(self):
        clock = FakeClock()
        tracer = RequestTracer()
        ctx = tracer.begin(clock)
        with ctx.leg("dispatch"):
            ctx.note_trap_delivered(1, 10, 0xA)
            ctx.note_trap_delivered(1, 14, 0xB)    # nested delivery
            ctx.note_trap_returned(1, 20)          # closes 0xB: 6 ns
            ctx.note_trap_returned(1, 30)          # closes 0xA: 20 ns
            clock.advance(40)
        tracer.finish(ctx, ok=True)
        traps = [s for s in ctx.spans if s.name == "trap"]
        assert [(s.attrs["address"], s.duration_ns) for s in traps] == [
            (0xB, 6), (0xA, 20),
        ]
        assert ctx.phases["trap"] == 26
        assert ctx.unmatched_traps == 0

    def test_unmatched_marks_are_counted_not_guessed(self):
        clock = FakeClock()
        tracer = RequestTracer()
        ctx = tracer.begin(clock)
        ctx.note_trap_delivered(5, 0, 0xC)   # never sigreturns
        ctx.note_trap_returned(99, 10)       # sigreturn with no mark: ignored
        tracer.finish(ctx, ok=True)
        assert ctx.traps == 0
        assert ctx.unmatched_traps == 1
        assert ctx.root.attrs["unmatched_traps"] == 1

    def test_nested_begin_raises(self):
        tracer = RequestTracer()
        ctx = tracer.begin(FakeClock())
        with pytest.raises(TraceError):
            tracer.begin(FakeClock())
        tracer.finish(ctx, ok=True)

    def test_finish_with_open_span_raises(self):
        clock = FakeClock()
        tracer = RequestTracer()
        ctx = tracer.begin(clock)
        ctx._open("dispatch", clock, {})
        with pytest.raises(TraceError):
            ctx.finish(ok=True)
        # clean up the ambient slot for the leak check
        ctx._close(ctx._stack[-1].span, "ok")
        tracer.finish(ctx, ok=True)

    def test_outcome_tag_wins_over_ok_flag(self):
        tracer = RequestTracer()
        ctx = tracer.begin(FakeClock())
        trace.tag_outcome("shed")
        tracer.finish(ctx, ok=False)
        assert ctx.outcome == "shed"
        assert ctx.root.attrs["outcome"] == "shed"
        assert ctx.root.status == "error"

    def test_stall_rewrite_clamped_to_self_time(self):
        clock = FakeClock()
        tracer = RequestTracer()
        ctx = tracer.begin(clock)
        with ctx.stall("step"):
            clock.advance(10)
            trace.note_rewrite(25)   # reported cost exceeds elapsed stall
        tracer.finish(ctx, ok=True)
        assert ctx.phases["rewrite-stall"] == 10
        assert ctx.phases["control"] == 0
        assert attribute_traces(tracer)["summary"]["identity_violations"] == 0


class TestAmbientApi:
    def test_noops_without_active_context(self):
        with trace.leg_span("dispatch") as span:
            assert span is None
        with trace.aux_span("nudge", "shed") as span:
            assert span is None
        trace.tag_outcome("served")
        trace.note_trap_delivered(1, 0, 0)
        trace.note_trap_returned(1, 0)
        trace.note_rewrite(100)
        trace.note_member_failover()

    def test_ambient_spans_reach_the_active_context(self):
        clock = FakeClock()
        tracer = RequestTracer()
        ctx = tracer.begin(clock)
        with trace.leg_span("dispatch"):
            with trace.aux_span("route", "route"):
                clock.advance(4)
            trace.note_member_failover()
            clock.advance(6)
        tracer.finish(ctx, ok=True)
        assert ctx.phases["route"] == 4
        assert ctx.phases["serve"] == 6
        assert ctx.intra_failovers == 1

    def test_finish_emits_wall_and_phase_metrics(self):
        hub = TelemetryHub()
        with recording(hub):
            tracer = RequestTracer()
            clock = FakeClock()
            ctx = tracer.begin(clock)
            with ctx.leg("dispatch"):
                clock.advance(11)
            tracer.finish(ctx, ok=True)
        reg = hub.registry
        assert reg.counter_value("traced_requests_total", outcome="ok") == 1
        hist = reg.histogram("request_wall_ns", outcome="ok")
        assert hist.count == 1 and hist.total == 11
        assert reg.histogram("request_phase_ns", phase="serve").total == 11


class TestRequestTracerIds:
    def test_ids_are_monotonic_across_traces(self):
        tracer = RequestTracer()
        for index in range(3):
            ctx = tracer.begin(FakeClock(), index=index)
            with ctx.leg("dispatch"):
                pass
            tracer.finish(ctx, ok=True)
        assert [ctx.trace_id for ctx in tracer.traces] == [1, 2, 3]
        span_ids = [span.span_id for span in tracer.spans()]
        assert span_ids == sorted(span_ids) == list(range(1, 7))

    def test_request_walls_in_trace_order(self):
        tracer = RequestTracer()
        for ns in (7, 3):
            clock = FakeClock()
            ctx = tracer.begin(clock)
            with ctx.leg("dispatch"):
                clock.advance(ns)
            tracer.finish(ctx, ok=True)
        assert tracer.request_walls() == [7, 3]


class TestSpanTracerStructuralIds:
    """Satellite: the aggregate tracer records parents by span ID."""

    def test_same_name_siblings_have_distinct_identities(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        with tracer.span("outer"):
            with tracer.span("step"):
                clock.advance(1)
            with tracer.span("step"):
                clock.advance(2)
        # finished-order is close-order; resolve by name/id instead
        spans = {span.span_id: span for span in tracer.finished}
        steps = [s for s in tracer.finished if s.name == "step"]
        root = next(s for s in tracer.finished if s.name == "outer")
        assert len({s.span_id for s in tracer.finished}) == 3
        for step in steps:
            assert step.parent_id == root.span_id
            assert step.parent == "outer"
            assert spans[step.parent_id].name == "outer"
        assert root.parent_id is None

    def test_span_ids_serialize(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner = next(s for s in tracer.finished if s.name == "inner")
        payload = inner.to_dict()
        assert payload["span_id"] == inner.span_id
        assert payload["parent_id"] == inner.parent_id


class TestQuantiles:
    """Satellite: exact-value histogram quantiles + Prometheus export."""

    def test_quantile_interpolates_within_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", bounds=(10, 20, 30))
        for value in (2, 4, 6, 8, 12, 14, 16, 18, 22, 24):
            hist.observe(value)
        # rank 5 falls at the end of the first bucket (4 obs in (0,10],
        # running 4, need rank 5 of 10): second bucket interpolates
        assert hist.quantile(0.5) == pytest.approx(12.5)
        assert hist.quantile(0.0) == 2       # clamped to observed min
        assert hist.quantile(1.0) == 24      # clamped to observed max

    def test_quantile_none_when_empty_and_validates_q(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        assert hist.quantile(0.5) is None
        hist.observe(1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_from_buckets_plus_inf_tail(self):
        # all mass beyond the last finite bound: fall back to hi
        value = quantile_from_buckets(
            (10,), [0, 4], count=4, q=0.99, lo=50, hi=90
        )
        assert value == 90

    def test_snapshot_includes_percentiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", bounds=(100,))
        for value in range(1, 11):
            hist.observe(value)
        snap = reg.snapshot()["histograms"]["lat"]
        assert {"p50", "p95", "p99"} <= set(snap)
        assert snap["p50"] == hist.quantile(0.5)

    def test_prometheus_quantile_family_round_trips(self):
        reg = MetricsRegistry()
        hist = reg.histogram("request_wall_ns", bounds=(10, 100), outcome="ok")
        for value in (5, 50, 500):
            hist.observe(value)
        text = prometheus_snapshot(reg)
        assert '# TYPE dynacut_request_wall_ns_quantile gauge' in text
        values = parse_prometheus(text)
        key = 'dynacut_request_wall_ns_quantile{outcome="ok",q="0.5"}'
        assert key in values
        assert values[key] == hist.quantile(0.5)

    def test_empty_histogram_renders_no_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("lat")
        text = prometheus_snapshot(reg)
        assert "_quantile" not in text
        parse_prometheus(text)


class TestPercentile:
    def test_nearest_rank_is_an_observed_value(self):
        values = [17, 3, 99, 42, 8]
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert percentile(values, q) in values
        assert percentile(values, 0.5) == 17
        assert percentile(values, 1.0) == 99
        assert percentile(values, 0.0) == 3

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestTraceExport:
    def _synthetic(self) -> RequestTracer:
        tracer = RequestTracer()
        clock = FakeClock()
        ctx = tracer.begin(clock, index=0)
        with ctx.leg("dispatch"):
            with ctx.leg("mesh.hop", shard="host-0", hop=0):
                clock.advance(21)
        tracer.finish(ctx, ok=True)
        return tracer

    def test_jsonl_round_trip(self):
        tracer = self._synthetic()
        text = to_trace_jsonl(tracer)
        spans = read_trace_jsonl(text)
        assert to_trace_jsonl(spans) == text
        assert attribute_traces(spans)["summary"]["identity_violations"] == 0

    def test_attribute_traces_rejects_rootless_stream(self):
        tracer = self._synthetic()
        orphans = [s for s in tracer.spans() if s.parent_id is not None]
        with pytest.raises(ValueError):
            attribute_traces(orphans)


def _traced_redis_run() -> tuple[RequestTracer, object]:
    kernel = Kernel()
    proc = stage_redis(kernel)
    client = RedisClient(kernel, REDIS_PORT)
    client.set("hot", "1")
    tracer = RequestTracer()
    result = run_request_timeline(
        kernel, lambda: client.get("hot") == "1",
        duration_ns=1 * SECOND_NS, tracer=tracer, max_requests=50,
    )
    return tracer, result


class TestDriverTracing:
    """Satellite: driver-level tracing and failover attribution."""

    def test_every_request_is_traced_with_identity(self):
        tracer, result = _traced_redis_run()
        assert len(tracer.traces) == result.total_requests > 0
        report = attribute_traces(tracer)
        assert report["summary"]["identity_violations"] == 0
        assert report["summary"]["requests"] == result.total_requests
        # single kernel: observed duration equals attributed wall time
        for record in report["requests"]:
            assert record["wall_ns"] == record["observed_ns"]

    def test_same_seed_exports_are_byte_identical(self):
        first, __ = _traced_redis_run()
        second, __ = _traced_redis_run()
        assert to_trace_jsonl(first) == to_trace_jsonl(second) != ""

    def test_failover_events_record_offset_and_count(self):
        kernel = Kernel()
        stage_redis(kernel)
        # a second backend whose listener is bound but orphaned (owner
        # crashed): the pool's view is stale until a dispatch bounces
        dead_port = REDIS_PORT + 1
        dead_sock = SocketDescriptor()
        assert kernel.net.bind(dead_sock, dead_port)
        assert kernel.net.listen(dead_sock)
        kernel.net.ports[dead_port].orphaned = True
        pool = kernel.net.register_frontend(
            6378, backends=[dead_port, REDIS_PORT]
        )
        client = RedisClient(kernel, 6378)
        tracer = RequestTracer()
        result = run_request_timeline(
            kernel, lambda: client.get("hot") is None,
            duration_ns=1 * SECOND_NS, max_requests=20,
            failover_meter=lambda: pool.total_failovers,
            tracer=tracer,
        )
        # the first pick landed on the orphaned backend exactly once:
        # the pool marked it down and routed around it, inside one request
        assert pool.total_failovers == 1
        assert result.failed_over_requests == 1
        assert result.failover_events == [(result.failover_events[0][0], 1)]
        offset, delta = result.failover_events[0]
        assert 0 <= offset <= 1 * SECOND_NS and delta == 1
        # ...and that same request's trace carries the failover tag
        flagged = [
            ctx for ctx in tracer.traces
            if ctx.root.attrs["intra_failovers"]
        ]
        assert len(flagged) == 1
        assert flagged[0].intra_failovers == 1

    def test_untraced_run_matches_traced_run_virtually(self):
        def run(tracer):
            kernel = Kernel()
            stage_redis(kernel)
            client = RedisClient(kernel, REDIS_PORT)
            client.set("hot", "1")
            result = run_request_timeline(
                kernel, lambda: client.get("hot") == "1",
                duration_ns=1 * SECOND_NS, tracer=tracer, max_requests=50,
            )
            return result, kernel.clock_ns

        traced, traced_clock = run(RequestTracer())
        plain, plain_clock = run(None)
        assert traced.total_requests == plain.total_requests
        assert traced_clock == plain_clock
        assert [p.completed for p in traced.points] == [
            p.completed for p in plain.points
        ]
