"""Tests for FleetPolicy validation and ProbeResult gating."""

from __future__ import annotations

import pytest

from repro.core import BlockMode, TrapPolicy
from repro.fleet import FleetPolicy, PolicyError, ProbeResult


class TestFleetPolicy:
    def test_defaults_are_valid(self):
        policy = FleetPolicy(features=("dav-write",))
        assert policy.strategy == "canary"
        assert policy.trap_policy_enum is TrapPolicy.REDIRECT
        assert policy.block_mode_enum is BlockMode.ENTRY

    def test_single_feature_string_coerced(self):
        policy = FleetPolicy(features="dav-write")
        assert policy.features == ("dav-write",)

    def test_no_features_rejected(self):
        with pytest.raises(PolicyError):
            FleetPolicy(features=())

    def test_terminate_policy_rejected(self):
        # killing an in-service instance on a stray trap is never a
        # fleet-safe policy
        with pytest.raises(PolicyError, match="terminate"):
            FleetPolicy(features=("f",), trap_policy="terminate")

    @pytest.mark.parametrize("kwargs", [
        {"strategy": "big-bang"},
        {"max_unavailable": 0},
        {"probe_requests": 0},
        {"probe_min_success": 1.5},
        {"drift_window_ns": 0},
        {"drift_trap_threshold": 0},
        {"drift_action": "panic"},
        {"shelve_decay_ns": 0},
        {"shelve_decay_ns": -1},
        {"shelve_max_live_blocks": 0},
        {"block_mode": "everything"},
        {"heartbeat_interval_ns": 0},
        {"heartbeat_interval_ns": -1},
        {"suspect_threshold": 0},
        {"quarantine_limit": 0},
        {"failover_budget": -1},
        {"trap_storm_window_ns": 0},
        {"trap_storm_threshold": 0},
        {"shards": 0},
        {"shards": -2},
        {"ring_replicas": 0},
        {"host_failover_budget": -1},
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            FleetPolicy(features=("f",), **kwargs)

    def test_dict_roundtrip(self):
        policy = FleetPolicy(
            features=("a", "b"), strategy="rolling", max_unavailable=3,
            trap_policy="verify", block_mode="all", probe_requests=9,
        )
        assert FleetPolicy.from_dict(policy.to_dict()) == policy

    def test_supervisor_knobs_roundtrip(self):
        policy = FleetPolicy(
            features=("f",), heartbeat_interval_ns=2_000_000_000,
            suspect_threshold=3, quarantine_limit=5, failover_budget=2,
            trap_storm_window_ns=7_000_000_000, trap_storm_threshold=9,
        )
        assert FleetPolicy.from_dict(policy.to_dict()) == policy
        assert policy.failover_budget == 2

    def test_shelve_knobs_roundtrip(self):
        policy = FleetPolicy(
            features=("f",), drift_action="shelve",
            shelve_decay_ns=3_000_000_000, shelve_max_live_blocks=16,
        )
        payload = policy.to_dict()
        assert payload["drift_action"] == "shelve"
        assert payload["shelve_decay_ns"] == 3_000_000_000
        assert payload["shelve_max_live_blocks"] == 16
        assert FleetPolicy.from_dict(payload) == policy

    def test_adaptive_drift_actions_accepted(self):
        for action in ("shelve", "recustomize"):
            policy = FleetPolicy(features=("f",), drift_action=action)
            assert policy.drift_action == action

    def test_mesh_knobs_roundtrip(self):
        policy = FleetPolicy(
            features=("f",), shards=4, ring_replicas=32,
            host_failover_budget=2,
        )
        payload = policy.to_dict()
        assert payload["shards"] == 4
        assert payload["ring_replicas"] == 32
        assert payload["host_failover_budget"] == 2
        assert FleetPolicy.from_dict(payload) == policy

    def test_mesh_defaults_are_single_kernel(self):
        # a default policy is the classic one-host fleet
        policy = FleetPolicy(features=("f",))
        assert policy.shards == 1
        assert policy.ring_replicas >= 1
        assert policy.host_failover_budget >= 0

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(PolicyError, match="unknown"):
            FleetPolicy.from_dict({"features": ["f"], "blast_radius": 1})


class TestProbeResult:
    def _policy(self, **kwargs):
        return FleetPolicy(features=("f",), **kwargs)

    def test_passes_when_healthy_and_blocked(self):
        probe = ProbeResult(
            instance="i", sent=4, succeeded=4, features_blocked={"f": True}
        )
        assert probe.success_rate == 1.0
        assert probe.passed(self._policy())

    def test_fails_below_min_success(self):
        probe = ProbeResult(
            instance="i", sent=4, succeeded=3, features_blocked={"f": True}
        )
        assert not probe.passed(self._policy())
        assert probe.passed(self._policy(probe_min_success=0.5))

    def test_fails_when_feature_still_served(self):
        probe = ProbeResult(
            instance="i", sent=4, succeeded=4, features_blocked={"f": False}
        )
        assert not probe.passed(self._policy())
        # the blocked-check can be waived by policy
        assert probe.passed(self._policy(probe_check_blocked=False))

    def test_blocked_check_skipped_for_verify_policy(self):
        # under VERIFY the first feature request heals the block, so
        # "still served" is the expected outcome, not a gate failure
        probe = ProbeResult(
            instance="i", sent=4, succeeded=4, features_blocked={"f": False}
        )
        assert probe.passed(self._policy(trap_policy="verify"))
