"""Tests for the NetworkStack frontend/backend balancing layer."""

from __future__ import annotations

import pytest

from repro.kernel.network import (
    BackendPool,
    NetworkError,
    NetworkStack,
    NoBackendAvailable,
    SocketDescriptor,
)


def _listen(net: NetworkStack, port: int) -> SocketDescriptor:
    sock = SocketDescriptor()
    assert net.bind(sock, port)
    assert net.listen(sock)
    return sock


@pytest.fixture()
def balanced():
    """A stack with frontend 8000 balancing over live listeners 8001-8003."""
    net = NetworkStack()
    for port in (8001, 8002, 8003):
        _listen(net, port)
    pool = net.register_frontend(8000, backends=[8001, 8002, 8003])
    return net, pool


class TestBackendPool:
    def test_add_remove_and_in_service(self):
        pool = BackendPool(frontend_port=8000)
        pool.add(8001)
        pool.add(8002)
        pool.add(8001)                      # idempotent
        assert pool.backends == [8001, 8002]
        pool.drain(8001)
        assert pool.in_service() == [8002]
        pool.rejoin(8001)
        assert pool.in_service() == [8001, 8002]
        pool.remove(8002)
        assert pool.backends == [8001]

    def test_backend_cannot_be_frontend(self):
        pool = BackendPool(frontend_port=8000)
        with pytest.raises(NetworkError):
            pool.add(8000)

    def test_drain_unknown_backend_rejected(self):
        pool = BackendPool(frontend_port=8000)
        with pytest.raises(NetworkError):
            pool.drain(9999)
        with pytest.raises(NetworkError):
            pool.rejoin(9999)


class TestFrontendRegistration:
    def test_register_reserves_port_from_bind(self, balanced):
        net, __ = balanced
        sock = SocketDescriptor()
        assert not net.bind(sock, 8000)     # frontend port is reserved

    def test_double_register_rejected(self, balanced):
        net, __ = balanced
        with pytest.raises(NetworkError):
            net.register_frontend(8000)

    def test_register_over_live_listener_rejected(self):
        net = NetworkStack()
        _listen(net, 8000)
        with pytest.raises(NetworkError):
            net.register_frontend(8000)

    def test_release_frees_the_port(self, balanced):
        net, __ = balanced
        net.release_frontend(8000)
        sock = SocketDescriptor()
        assert net.bind(sock, 8000)


class TestBalancedConnect:
    def test_round_robin_over_backends(self, balanced):
        net, pool = balanced
        for __ in range(6):
            net.connect(8000)
        assert pool.dispatched == {8001: 2, 8002: 2, 8003: 2}

    def test_drained_backend_skipped(self, balanced):
        net, pool = balanced
        pool.drain(8002)
        for __ in range(4):
            net.connect(8000)
        assert pool.dispatched[8002] == 0
        assert pool.dispatched[8001] == 2
        assert pool.dispatched[8003] == 2

    def test_dead_listener_skipped(self, balanced):
        net, pool = balanced
        net.release_port(8001)              # e.g. process frozen mid-rewrite
        for __ in range(4):
            net.connect(8000)
        assert pool.dispatched[8001] == 0
        assert pool.dispatched[8002] + pool.dispatched[8003] == 4

    def test_all_drained_refuses_connection(self, balanced):
        net, pool = balanced
        for port in (8001, 8002, 8003):
            pool.drain(port)
        with pytest.raises(NetworkError, match="no backend in service"):
            net.connect(8000)

    def test_connection_reaches_backend_listener(self, balanced):
        net, __ = balanced
        endpoint = net.connect(8000)
        # exactly one backend listener got the pending connection
        pending = [
            listener for listener in net.ports.values() if listener.has_pending
        ]
        assert len(pending) == 1
        conn = pending[0].backlog[0]
        assert conn.a is endpoint

    def test_direct_backend_connect_still_works(self, balanced):
        net, pool = balanced
        net.connect(8001)                   # bypass the balancer
        assert pool.dispatched[8001] == 0


class TestAllDead:
    def test_all_dead_raises_no_backend_available(self, balanced):
        net, __ = balanced
        for port in (8001, 8002, 8003):
            net.release_port(port)
        with pytest.raises(NoBackendAvailable, match="no backend in service"):
            net.connect(8000)

    def test_no_backend_available_is_a_network_error(self):
        # existing callers catching NetworkError keep working
        assert issubclass(NoBackendAvailable, NetworkError)

    def test_last_one_dies_mid_scan(self, balanced):
        # the only live backend dies between the in-service snapshot
        # and its listener check: the scan must end in a clean error,
        # not pick a dead port or loop
        net, __ = balanced
        net.release_port(8001)
        net.release_port(8002)
        real = net._backend_listener
        died = {"done": False}

        def dying(port):
            if port == 8003 and not died["done"]:
                died["done"] = True
                net.release_port(8003)
            return real(port)

        net._backend_listener = dying
        with pytest.raises(NoBackendAvailable, match="no backend in service"):
            net.connect(8000)


class TestFailover:
    def test_orphaned_backend_fails_over(self, balanced):
        # a crashed process leaves its listener orphaned: the balancer
        # only notices at dispatch, marks it down, and retries the
        # connect on the next live backend
        net, pool = balanced
        net.ports[8001].orphaned = True
        for __ in range(4):
            net.connect(8000)
        assert 8001 in pool.down
        assert pool.failovers == {8001: 1}
        assert pool.total_failovers == 1
        assert pool.dispatched[8001] == 0
        assert pool.dispatched[8002] + pool.dispatched[8003] == 4

    def test_budget_exhausted_raises(self, balanced):
        net, pool = balanced
        assert pool.failover_budget == 1
        for port in (8001, 8002, 8003):
            net.ports[port].orphaned = True
        with pytest.raises(NoBackendAvailable, match="failover budget"):
            net.connect(8000)
        # both picks within the budget were marked down and recorded
        assert len(pool.down) == 2
        assert pool.total_failovers == 2

    def test_zero_budget_fails_immediately(self, balanced):
        net, pool = balanced
        pool.failover_budget = 0
        net.ports[8001].orphaned = True
        net.ports[8002].orphaned = True
        net.ports[8003].orphaned = True
        with pytest.raises(NoBackendAvailable):
            net.connect(8000)
        assert len(pool.down) == 1          # only the single pick

    def test_marked_down_excluded_until_rejoin(self, balanced):
        net, pool = balanced
        pool.mark_down(8002)
        assert pool.in_service() == [8001, 8003]
        for __ in range(4):
            net.connect(8000)
        assert pool.dispatched[8002] == 0
        pool.rejoin(8002)
        assert 8002 in pool.in_service()
        pool.mark_down(8002)
        pool.mark_up(8002)
        assert 8002 in pool.in_service()

    def test_direct_connect_to_orphan_refused(self, balanced):
        net, __ = balanced
        net.ports[8001].orphaned = True
        with pytest.raises(NetworkError, match="no accepting process"):
            net.connect(8001)
