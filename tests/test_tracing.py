"""Tests for the drcov trace format and the block tracer."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.kernel import Kernel
from repro.tracing import (
    BlockRecord,
    BlockTracer,
    CoverageTrace,
    ModuleEntry,
    merge_traces,
)
from repro.workloads import RedisClient

from .helpers import build_minic, run_image


_records = st.builds(
    BlockRecord,
    module=st.sampled_from(["app", "libc.so", "other.so"]),
    offset=st.integers(0, 1 << 20),
    size=st.integers(1, 64),
)


class TestCoverageTrace:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(_records, max_size=60))
    def test_text_roundtrip(self, records):
        trace = CoverageTrace(
            modules=[ModuleEntry("app", 0x400000, 0x500000),
                     ModuleEntry("libc.so", 0x7F00000000, 0x7F10000000),
                     ModuleEntry("other.so", 0, 0x1000)]
        )
        for record in records:
            trace.add(record)
        parsed = CoverageTrace.from_text(trace.to_text())
        assert parsed.blocks == trace.blocks
        assert parsed.order == trace.order

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_records, max_size=40))
    def test_add_is_idempotent(self, records):
        trace = CoverageTrace()
        for record in records:
            trace.add(record)
            trace.add(record)
        assert len(trace.order) == len(trace.blocks)

    def test_first_seen_order_preserved(self):
        trace = CoverageTrace()
        a = BlockRecord("m", 16, 4)
        b = BlockRecord("m", 0, 4)
        trace.add(a)
        trace.add(b)
        trace.add(a)
        assert trace.order == [a, b]

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.lists(_records, max_size=20), max_size=4))
    def test_merge_is_union(self, groups):
        traces = []
        for group in groups:
            trace = CoverageTrace()
            for record in group:
                trace.add(record)
            traces.append(trace)
        merged = merge_traces(traces)
        expected = set().union(*(t.blocks for t in traces)) if traces else set()
        assert merged.blocks == expected

    def test_module_blocks_filter(self):
        trace = CoverageTrace()
        trace.add(BlockRecord("app", 0, 4))
        trace.add(BlockRecord("libc.so", 0, 4))
        assert trace.module_blocks("app") == {BlockRecord("app", 0, 4)}

    def test_bad_header_rejected(self):
        try:
            CoverageTrace.from_text("not a trace\n")
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")


class TestBlockTracer:
    def test_traces_known_program_blocks(self):
        # a program with an easily countable block structure
        image = build_minic(
            "func main() { var s = 0; var i = 0; while (i < 4) "
            "{ s = s + i; i = i + 1; } return s; }",
            "loopy",
            with_libc=False,
        )
        kernel = Kernel()
        kernel.register_binary(image)
        proc = kernel.spawn("loopy")
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run_until(lambda: not proc.alive)
        trace = tracer.finish()
        blocks = trace.module_blocks("loopy")
        assert blocks, "no blocks recorded"
        # loop body blocks recorded once despite 4 iterations
        assert len(trace.order) == len(blocks)
        # every block lies in the text segment
        text = image.segment("text")
        for block in blocks:
            assert text.vaddr <= block.offset < text.vaddr + len(text.data)

    def test_block_sizes_cover_executed_bytes(self):
        image = build_minic(
            "func main() { return 1 + 2; }", "tiny", with_libc=False
        )
        kernel = Kernel()
        kernel.register_binary(image)
        proc = kernel.spawn("tiny")
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run_until(lambda: not proc.alive)
        trace = tracer.finish()
        for block in trace.blocks:
            assert block.size > 0

    def test_nudge_splits_phases(self, redis_server):
        kernel, proc, client = redis_server
        kernel.detach_tracer(proc.pid)
        tracer = BlockTracer(kernel, proc).attach()
        client.ping()
        phase1 = tracer.nudge_dump()
        client.set("x", "1")
        phase2 = tracer.finish()
        # SET's handler blocks appear only in phase 2
        only_phase2 = phase2.module_blocks(REDIS_BINARY) - phase1.module_blocks(
            REDIS_BINARY
        )
        assert only_phase2
        assert len(tracer.dumps) == 2

    def test_library_blocks_attributed_to_libc(self, redis_server):
        kernel, proc, client = redis_server
        tracer = BlockTracer(kernel, proc).attach()
        client.ping()
        trace = tracer.finish()
        assert trace.module_blocks("libc.so")
        # libc offsets are module-relative (small), not absolute
        assert all(b.offset < 0x100000 for b in trace.module_blocks("libc.so"))

    def test_tracer_detached_stops_recording(self):
        kernel = Kernel()
        proc = stage_redis(kernel, run_to_ready=False)
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run(max_instructions=1_000)
        events = tracer.block_events
        tracer.detach()
        kernel.run(max_instructions=5_000)
        assert tracer.block_events == events
