"""Unit tests for the in-memory filesystem and file handles."""

from __future__ import annotations

import pytest

from repro.kernel import (
    FileHandle,
    InMemoryFS,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
)
from repro.kernel.filesystem import FileSystemError


@pytest.fixture()
def fs():
    filesystem = InMemoryFS()
    filesystem.write_file("/etc/conf", "key value\n")
    return filesystem


class TestHostApi:
    def test_write_read_roundtrip(self, fs):
        fs.write_file("/a/b", b"\x00\x01binary")
        assert fs.read_file("/a/b") == b"\x00\x01binary"

    def test_string_payloads_utf8(self, fs):
        fs.write_file("/s", "héllo")
        assert fs.read_file("/s") == "héllo".encode("utf-8")

    def test_path_normalization(self, fs):
        fs.write_file("var//www///x", "y")
        assert fs.exists("/var/www/x")
        assert fs.read_file("/var/www/x") == b"y"

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.read_file("/missing")

    def test_unlink(self, fs):
        assert fs.unlink("/etc/conf")
        assert not fs.exists("/etc/conf")
        assert not fs.unlink("/etc/conf")

    def test_listdir_prefix(self, fs):
        fs.write_file("/www/a.html", "a")
        fs.write_file("/www/b.html", "b")
        fs.write_file("/other/c", "c")
        assert fs.listdir("/www") == ["/www/a.html", "/www/b.html"]


class TestOpenSemantics:
    def test_rdonly_missing_returns_none(self, fs):
        assert fs.open("/nope", O_RDONLY) is None

    def test_creat_makes_file(self, fs):
        handle = fs.open("/new", O_WRONLY | O_CREAT)
        assert isinstance(handle, FileHandle)
        assert fs.exists("/new")

    def test_trunc_clears_content(self, fs):
        fs.open("/etc/conf", O_WRONLY | O_TRUNC)
        assert fs.read_file("/etc/conf") == b""

    def test_trunc_without_write_mode_keeps_content(self, fs):
        fs.open("/etc/conf", O_RDONLY | O_TRUNC)
        assert fs.read_file("/etc/conf") == b"key value\n"

    def test_append_positions_at_end(self, fs):
        handle = fs.open("/etc/conf", O_WRONLY | O_APPEND)
        handle.write(b"more")
        assert fs.read_file("/etc/conf") == b"key value\nmore"


class TestFileHandle:
    def test_sequential_reads_advance_offset(self, fs):
        handle = fs.open("/etc/conf", O_RDONLY)
        assert handle.read(3) == b"key"
        assert handle.read(100) == b" value\n"
        assert handle.read(10) == b""

    def test_write_on_readonly_refused(self, fs):
        handle = fs.open("/etc/conf", O_RDONLY)
        assert handle.write(b"x") is None

    def test_read_on_writeonly_refused(self, fs):
        handle = fs.open("/etc/conf", O_WRONLY)
        assert handle.read(4) is None

    def test_rdwr_interleaved(self, fs):
        handle = fs.open("/etc/conf", O_RDWR)
        handle.write(b"KEY")
        handle.offset = 0
        assert handle.read(9) == b"KEY value"

    def test_sparse_write_zero_fills(self, fs):
        handle = fs.open("/sparse", O_WRONLY | O_CREAT)
        handle.offset = 4
        handle.write(b"x")
        assert fs.read_file("/sparse") == b"\x00\x00\x00\x00x"

    def test_write_after_unlink_fails_gracefully(self, fs):
        handle = fs.open("/etc/conf", O_WRONLY)
        fs.unlink("/etc/conf")
        assert handle.write(b"x") is None
        assert handle.read(1) is None
