"""Test helpers: compile-and-run MiniC or assembly snippets."""

from __future__ import annotations

from repro.apps import libc_image
from repro.binfmt import SelfImage, link_executable
from repro.isa import assemble
from repro.kernel import Kernel, Process
from repro.minic import compile_source


def build_minic(source: str, name: str = "prog", with_libc: bool = True) -> SelfImage:
    """Compile a MiniC program into an executable."""
    module = compile_source(source, name + ".o")
    libraries = [libc_image()] if with_libc else []
    return link_executable([module], name, libraries=libraries)


def build_asm(source: str, name: str = "prog") -> SelfImage:
    module = assemble(source, name + ".o")
    return link_executable([module], name)


def run_image(
    image: SelfImage,
    argv: list[str] | None = None,
    max_instructions: int = 2_000_000,
    kernel: Kernel | None = None,
) -> tuple[Kernel, Process]:
    """Boot ``image`` and run it until it exits (or budget exhausts)."""
    if kernel is None:
        kernel = Kernel()
    if "libc.so" in image.needed:
        kernel.register_binary(libc_image())
    kernel.register_binary(image)
    proc = kernel.spawn(image.name, argv)
    kernel.run(max_instructions=max_instructions, until=lambda: not proc.alive)
    return kernel, proc


def run_minic(
    source: str,
    argv: list[str] | None = None,
    max_instructions: int = 2_000_000,
) -> tuple[Kernel, Process]:
    """Compile and run a MiniC program to completion."""
    return run_image(build_minic(source), argv, max_instructions)


def exit_code_of(source: str, argv: list[str] | None = None) -> int:
    """Run a MiniC program; return its exit code (asserts clean exit)."""
    __, proc = run_minic(source, argv)
    assert not proc.alive, "program did not exit within the budget"
    assert proc.term_signal is None, f"program killed by {proc.term_signal}"
    assert proc.exit_code is not None
    return proc.exit_code


def stdout_of(source: str, argv: list[str] | None = None) -> str:
    __, proc = run_minic(source, argv)
    return proc.stdout_text()
