"""§5 extension: live library re-randomization via process rewriting.

The paper lists "live code re-randomization [Shuffler]" among the
problems process rewriting can solve.  These tests move libc under a
*running* server: service continues, every stale pointer is rebased,
and addresses an attacker leaked before the move are dead.
"""

from __future__ import annotations

import pytest

from repro.apps import (
    LIGHTTPD_PORT,
    NGINX_PORT,
    REDIS_PORT,
    nginx_worker,
    stage_lighttpd,
    stage_nginx,
    stage_redis,
)
from repro.apps.kvstore import REDIS_BINARY
from repro.core import DynaCut, TraceDiff, TrapPolicy
from repro.kernel import Kernel, ProcessState, Signal
from repro.tracing import BlockTracer
from repro.workloads import HttpClient, RedisClient


def _libc_base(proc) -> int:
    return next(m.load_base for m in proc.modules if m.name == "libc.so")


class TestRerandomization:
    def test_redis_survives_libc_move(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        client.set("k", "v")
        before = _libc_base(proc)
        dynacut = DynaCut(kernel)
        dynacut.rerandomize_library(proc.pid, "libc.so")
        proc = dynacut.restored_process(proc.pid)
        after = _libc_base(proc)
        assert after != before
        assert client.ping()
        assert client.get("k") == "v"
        assert client.set("post", "move")

    def test_old_range_is_unmapped(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        before = _libc_base(proc)
        dynacut = DynaCut(kernel)
        dynacut.rerandomize_library(proc.pid, "libc.so")
        proc = dynacut.restored_process(proc.pid)
        assert proc.memory.find_vma(before) is None

    def test_repeated_moves(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        bases = {_libc_base(proc)}
        dynacut = DynaCut(kernel)
        for __ in range(3):
            dynacut.rerandomize_library(proc.pid, "libc.so")
            proc = dynacut.restored_process(proc.pid)
            bases.add(_libc_base(proc))
            assert client.ping()
        assert len(bases) >= 2

    def test_got_slots_repointed(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        dynacut = DynaCut(kernel)
        dynacut.rerandomize_library(proc.pid, "libc.so")
        proc = dynacut.restored_process(proc.pid)
        app = kernel.binaries[REDIS_BINARY]
        libc = kernel.binaries["libc.so"]
        new_base = _libc_base(proc)
        for name, slot in app.got_entries.items():
            resolved = int.from_bytes(proc.memory.read_raw(slot, 8), "little")
            assert resolved == new_base + libc.symbol_address(name), name

    def test_lighttpd_and_explicit_base(self):
        kernel = Kernel()
        proc = stage_lighttpd(kernel)
        client = HttpClient(kernel, LIGHTTPD_PORT)
        target = 0x7C00_0000_0000
        dynacut = DynaCut(kernel)
        dynacut.rerandomize_library(proc.pid, "libc.so", new_base=target)
        proc = dynacut.restored_process(proc.pid)
        assert _libc_base(proc) == target
        assert client.get("/").status == 200

    def test_multiprocess_nginx_moves_together(self):
        kernel = Kernel()
        master = stage_nginx(kernel)
        client = HttpClient(kernel, NGINX_PORT)
        dynacut = DynaCut(kernel)
        dynacut.rerandomize_library(master.pid, "libc.so")
        master = dynacut.restored_process(master.pid)
        worker = nginx_worker(kernel, master)
        assert _libc_base(master) != 0x7F00_0000_0000 or (
            _libc_base(worker) != 0x7F00_0000_0000
        )
        assert client.get("/").status == 200
        assert client.put("/f.txt", "x").status == 201


class TestStaleAddressesDie:
    def test_leaked_libc_address_pivot_fails(self):
        """An attacker who leaked fork()'s libc address before the move
        pivots into dead memory afterwards — no fork, worker dies."""
        kernel = Kernel()
        master = stage_nginx(kernel)
        worker = nginx_worker(kernel, master)
        libc = kernel.binaries["libc.so"]
        leaked_fork = _libc_base(worker) + libc.symbol_address("fork")

        dynacut = DynaCut(kernel)
        dynacut.rerandomize_library(master.pid, "libc.so")
        master = dynacut.restored_process(master.pid)
        worker = nginx_worker(kernel, master)

        events_before = len(kernel.security_log)
        worker.regs.rip = leaked_fork          # the stale pivot
        if worker.state is ProcessState.BLOCKED:
            worker.state = ProcessState.RUNNABLE
            worker.wake_predicate = None
        kernel.run(max_instructions=10_000,
                   until=lambda: not worker.alive)
        assert not worker.alive
        assert worker.term_signal is Signal.SIGSEGV
        assert not any(
            e.kind == "fork" and e.pid == worker.pid
            for e in kernel.security_log[events_before:]
        )


class TestComposesWithTrapHandler:
    def test_feature_block_survives_libc_move(self):
        """The injected handler library imports from libc; moving libc
        must re-resolve its GOT so redirects keep working."""
        kernel = Kernel()
        proc = stage_redis(kernel)
        tracer = BlockTracer(kernel, proc).attach()
        client = RedisClient(kernel, REDIS_PORT)
        for cmd in ("PING", "GET a", "DEL a"):
            client.command(cmd)
        wanted = tracer.nudge_dump()
        client.command("SET a 1")
        undesired = tracer.finish()
        feature = TraceDiff(REDIS_BINARY).feature_blocks(
            "SET", [wanted], [undesired]
        )
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.REDIRECT,
            redirect_symbol="redis_unknown_cmd",
        )
        proc = dynacut.restored_process(proc.pid)
        assert client.command("SET x 1").startswith("-ERR")

        dynacut.rerandomize_library(proc.pid, "libc.so")
        proc = dynacut.restored_process(proc.pid)
        # trap still fires and still redirects gracefully
        assert client.command("SET x 1").startswith("-ERR")
        assert client.ping()
        assert proc.alive


class TestErrors:
    def test_unknown_module_rejected(self):
        from repro.core.rewriter import RewriteError

        kernel = Kernel()
        proc = stage_redis(kernel)
        dynacut = DynaCut(kernel)
        with pytest.raises(RewriteError):
            dynacut.rerandomize_library(proc.pid, "nonexistent.so")
