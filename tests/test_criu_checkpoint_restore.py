"""Checkpoint/restore behaviour: identity, TCP repair, page policies."""

from __future__ import annotations

import pytest

from repro.apps import (
    REDIS_PORT,
    nginx_worker,
    stage_nginx,
    stage_redis,
)
from repro.criu import (
    CheckpointImage,
    RestoreError,
    checkpoint_tree,
    process_tree_pids,
    restore_from_dir,
    restore_tree,
)
from repro.kernel import Kernel, ProcessState
from repro.workloads import HttpClient, RedisClient

from .helpers import build_minic


class TestIdentityRoundTrip:
    def test_registers_memory_preserved(self, redis_server):
        kernel, proc, client = redis_server
        client.set("key", "val")
        regs_before = proc.regs.snapshot()
        vmas_before = [vma.describe() for vma in proc.memory.vmas]
        mem_probe = proc.memory.read_raw(0x400000, 64)

        checkpoint = checkpoint_tree(kernel, proc.pid)
        (restored,) = restore_tree(kernel, checkpoint)

        assert restored.pid == proc.pid
        assert restored.regs.snapshot() == regs_before
        assert [vma.describe() for vma in restored.memory.vmas] == vmas_before
        assert restored.memory.read_raw(0x400000, 64) == mem_probe
        assert restored.state is ProcessState.RUNNABLE

    def test_sigactions_preserved(self, redis_server):
        kernel, proc, client = redis_server
        before = dict(proc.sigactions)
        checkpoint = checkpoint_tree(kernel, proc.pid)
        (restored,) = restore_tree(kernel, checkpoint)
        assert {int(s): (a.handler, a.restorer) for s, a in restored.sigactions.items()} == {
            int(s): (a.handler, a.restorer) for s, a in before.items()
        }

    def test_server_still_serves_after_roundtrip(self, redis_server):
        kernel, proc, client = redis_server
        client.set("a", "1")
        checkpoint = checkpoint_tree(kernel, proc.pid)
        restore_tree(kernel, checkpoint)
        assert client.get("a") == "1"        # same connection, TCP repair
        assert client.set("b", "2")
        fresh = RedisClient(kernel, REDIS_PORT)
        assert fresh.get("b") == "2"          # and new connections work

    def test_buffered_request_survives(self, redis_server):
        kernel, proc, client = redis_server
        client.set("k", "v")
        sock = kernel.connect(REDIS_PORT)
        sock.send("GET k\n")                  # in flight during the dump
        checkpoint = checkpoint_tree(kernel, proc.pid)
        restore_tree(kernel, checkpoint)
        assert sock.recv_until(b"\n") == b"$v\n"

    def test_open_file_offsets_preserved(self):
        source = r"""
extern func open; extern func read; extern func println; extern func sleep_ms;
func main() {
    var fd = open("/data/f", 0);
    var buf[8];
    read(fd, buf, 4);          // consume 4 bytes
    println("midway");
    sleep_ms(100000);          // long pause: checkpoint here
    read(fd, buf, 4);          // must continue at offset 4
    store8(buf + 4, 0);
    println(buf);
    return 0;
}
"""
        image = build_minic(source, "fileoff")
        kernel = Kernel()
        from repro.apps import libc_image

        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        kernel.fs.write_file("/data/f", "ABCDEFGH")
        proc = kernel.spawn("fileoff")
        kernel.run_until(lambda: "midway" in proc.stdout_text())
        checkpoint = checkpoint_tree(kernel, proc.pid)
        (restored,) = restore_tree(kernel, checkpoint)
        restored.sleep_until = None           # cut the nap short
        restored.stdout = proc.stdout         # keep collected output
        kernel.run_until(lambda: not restored.alive)
        assert "EFGH" in restored.stdout_text()


class TestTreeCheckpoint:
    def test_process_tree_pids(self, nginx_server):
        kernel, master, client = nginx_server
        pids = process_tree_pids(kernel, master.pid)
        assert master.pid in pids
        assert len(pids) == 2  # master + one worker

    def test_multiprocess_roundtrip(self, nginx_server):
        kernel, master, client = nginx_server
        checkpoint = checkpoint_tree(kernel, master.pid)
        assert len(checkpoint.processes) == 2
        restored = restore_tree(kernel, checkpoint)
        new_master = next(p for p in restored if p.pid == master.pid)
        worker = next(p for p in restored if p.pid != master.pid)
        assert worker.ppid == master.pid
        assert worker.pid in new_master.children
        assert client.get("/").status == 200

    def test_shared_listener_rebinds(self, nginx_server):
        kernel, master, client = nginx_server
        checkpoint = checkpoint_tree(kernel, master.pid)
        restore_tree(kernel, checkpoint)
        assert client.get("/").status == 200


class TestPagePolicies:
    def test_exec_pages_dumped_only_with_flag(self, redis_server):
        kernel, proc, client = redis_server
        with_exec = checkpoint_tree(
            kernel, proc.pid, image_dir=None, dump_exec_pages=True,
            leave_running=True,
        )
        without = checkpoint_tree(
            kernel, proc.pid, image_dir=None, dump_exec_pages=False,
            leave_running=True,
        )
        assert with_exec.total_pages() > without.total_pages()
        text_addr = 0x400000
        assert with_exec.processes[0].has_dumped(text_addr)
        assert not without.processes[0].has_dumped(text_addr)

    def test_patch_lost_without_exec_dump(self, redis_server):
        """Vanilla CRIU semantics: code patches do not survive restore
        because text is reconstructed from the pristine binary — the
        exact problem DynaCut's criu/mem.c change solves."""
        kernel, proc, client = redis_server
        checkpoint = checkpoint_tree(kernel, proc.pid, dump_exec_pages=False)
        (restored,) = restore_tree(kernel, checkpoint)
        # text matches the registered binary byte-for-byte
        binary = kernel.binaries["miniredis"]
        text = binary.segment("text")
        assert restored.memory.read_raw(text.vaddr, 64) == text.data[:64]

    def test_anonymous_pages_always_dumped(self, redis_server):
        kernel, proc, client = redis_server
        checkpoint = checkpoint_tree(
            kernel, proc.pid, dump_exec_pages=False, leave_running=True,
        )
        image = checkpoint.processes[0]
        stack_vma = next(v for v in image.mm.vmas if v.tag == "stack")
        assert image.has_dumped(stack_vma.start)


class TestLifecycleEdges:
    def test_originals_killed_by_default(self, redis_server):
        kernel, proc, client = redis_server
        checkpoint_tree(kernel, proc.pid)
        assert not proc.alive

    def test_leave_running_keeps_process(self, redis_server):
        kernel, proc, client = redis_server
        checkpoint_tree(kernel, proc.pid, leave_running=True)
        assert proc.alive
        assert client.ping()

    def test_restore_over_live_pid_rejected(self, redis_server):
        kernel, proc, client = redis_server
        checkpoint = checkpoint_tree(kernel, proc.pid, leave_running=True)
        with pytest.raises(RestoreError):
            restore_tree(kernel, checkpoint)

    def test_restore_from_saved_directory(self, redis_server):
        kernel, proc, client = redis_server
        checkpoint_tree(kernel, proc.pid, image_dir="/tmp/criu/rt")
        loaded = CheckpointImage.load(kernel.fs, "/tmp/criu/rt")
        assert loaded.pids == [proc.pid]
        restored = restore_from_dir(kernel, "/tmp/criu/rt")
        assert restored[0].pid == proc.pid
        assert client.ping()

    def test_checkpoint_advances_clock(self, redis_server):
        kernel, proc, client = redis_server
        before = kernel.clock_ns
        checkpoint = checkpoint_tree(kernel, proc.pid)
        mid = kernel.clock_ns
        restore_tree(kernel, checkpoint)
        after = kernel.clock_ns
        assert mid > before
        assert after > mid

    def test_image_dir_contains_expected_files(self, redis_server):
        kernel, proc, client = redis_server
        checkpoint_tree(kernel, proc.pid, image_dir="/tmp/criu/files")
        names = kernel.fs.listdir("/tmp/criu/files")
        expected = {
            f"/tmp/criu/files/{stem}-{proc.pid}.img"
            for stem in ("core", "mm", "pagemap", "pages", "files")
        } | {"/tmp/criu/files/inventory.img"}
        assert expected <= set(names)
