"""Tests for address spaces, VMAs, and permission enforcement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import AddressSpace, FileBacking, MemoryFault, PAGE_SIZE

BASE = 0x400000


@pytest.fixture()
def space():
    memory = AddressSpace()
    memory.mmap(BASE, 4 * PAGE_SIZE, "rw-", tag="data")
    return memory


class TestMapping:
    def test_mmap_rounds_to_pages(self, space):
        vma = space.mmap(BASE + 0x10000, 100, "r--")
        assert vma.size == PAGE_SIZE

    def test_overlap_rejected(self, space):
        with pytest.raises(MemoryFault):
            space.mmap(BASE + PAGE_SIZE, PAGE_SIZE, "rw-")

    def test_unaligned_rejected(self):
        memory = AddressSpace()
        with pytest.raises(ValueError):
            memory.mmap(0x401001, PAGE_SIZE, "rw-")

    def test_munmap_full(self, space):
        space.munmap(BASE, 4 * PAGE_SIZE)
        assert space.find_vma(BASE) is None
        with pytest.raises(MemoryFault):
            space.read(BASE, 1)

    def test_munmap_splits_vma(self, space):
        space.munmap(BASE + PAGE_SIZE, PAGE_SIZE)
        assert space.find_vma(BASE) is not None
        assert space.find_vma(BASE + PAGE_SIZE) is None
        assert space.find_vma(BASE + 2 * PAGE_SIZE) is not None
        # the split tail keeps correct backing offsets
        lo = space.find_vma(BASE)
        hi = space.find_vma(BASE + 2 * PAGE_SIZE)
        assert lo.end == BASE + PAGE_SIZE
        assert hi.start == BASE + 2 * PAGE_SIZE

    def test_munmap_preserves_file_offset_of_tail(self):
        memory = AddressSpace()
        memory.mmap(
            BASE, 3 * PAGE_SIZE, "r-x",
            backing=FileBacking("bin", 0x1000),
        )
        memory.munmap(BASE, PAGE_SIZE)
        tail = memory.find_vma(BASE + PAGE_SIZE)
        assert tail.backing.offset == 0x1000 + PAGE_SIZE

    def test_find_free_range_avoids_existing(self, space):
        addr = space.find_free_range(PAGE_SIZE, hint=BASE)
        assert space.find_vma(addr) is None
        assert addr >= BASE + 4 * PAGE_SIZE


class TestAccess:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 4 * PAGE_SIZE - 64), st.binary(min_size=1, max_size=64))
    def test_write_read_roundtrip(self, offset, data):
        memory = AddressSpace()
        memory.mmap(BASE, 4 * PAGE_SIZE, "rw-")
        memory.write(BASE + offset, data)
        assert memory.read(BASE + offset, len(data)) == data

    def test_cross_page_write(self, space):
        data = bytes(range(100))
        addr = BASE + PAGE_SIZE - 50
        space.write(addr, data)
        assert space.read(addr, 100) == data

    def test_read_requires_r(self):
        memory = AddressSpace()
        memory.mmap(BASE, PAGE_SIZE, "-w-")
        with pytest.raises(MemoryFault):
            memory.read(BASE, 1)

    def test_write_requires_w(self):
        memory = AddressSpace()
        memory.mmap(BASE, PAGE_SIZE, "r--")
        with pytest.raises(MemoryFault):
            memory.write(BASE, b"x")

    def test_fetch_requires_x(self):
        memory = AddressSpace()
        memory.mmap(BASE, PAGE_SIZE, "rw-")
        with pytest.raises(MemoryFault) as excinfo:
            memory.fetch(BASE, 1)
        assert excinfo.value.access == "exec"

    def test_fetch_from_exec_region(self):
        memory = AddressSpace()
        memory.mmap(BASE, PAGE_SIZE, "r-x")
        memory.write_raw(BASE, b"\x90")
        assert memory.fetch(BASE, 1) == b"\x90"

    def test_unmapped_access_faults_with_address(self, space):
        with pytest.raises(MemoryFault) as excinfo:
            space.read(0xDEAD000, 4)
        assert excinfo.value.address == 0xDEAD000

    def test_read_cstring(self, space):
        space.write(BASE, b"hello\x00world")
        assert space.read_cstring(BASE) == b"hello"

    def test_read_cstring_unterminated(self):
        memory = AddressSpace()
        memory.mmap(BASE, PAGE_SIZE, "rw-")
        memory.write_raw(BASE, b"\x01" * PAGE_SIZE)
        with pytest.raises(MemoryFault):
            memory.read_cstring(BASE, limit=PAGE_SIZE // 2)

    def test_raw_access_ignores_permissions(self):
        memory = AddressSpace()
        memory.mmap(BASE, PAGE_SIZE, "---")
        memory.write_raw(BASE, b"k")
        assert memory.read_raw(BASE, 1) == b"k"


class TestCodeEpoch:
    def test_write_to_exec_bumps_epoch(self):
        memory = AddressSpace()
        memory.mmap(BASE, PAGE_SIZE, "r-x")
        before = memory.code_epoch
        memory.write_raw(BASE, b"\xcc")
        assert memory.code_epoch > before

    def test_write_to_data_keeps_epoch(self, space):
        before = space.code_epoch
        space.write(BASE, b"x")
        assert space.code_epoch == before

    def test_mprotect_bumps_epoch(self, space):
        before = space.code_epoch
        space.mprotect(BASE, PAGE_SIZE, "r-x")
        assert space.code_epoch > before

    def test_mprotect_changes_perms_mid_region(self, space):
        space.mprotect(BASE + PAGE_SIZE, PAGE_SIZE, "r--")
        assert space.find_vma(BASE).perms == "rw-"
        assert space.find_vma(BASE + PAGE_SIZE).perms == "r--"
        assert space.find_vma(BASE + 2 * PAGE_SIZE).perms == "rw-"


class TestClone:
    def test_clone_is_deep(self, space):
        space.write(BASE, b"orig")
        child = space.clone()
        child.write(BASE, b"chng")
        assert space.read(BASE, 4) == b"orig"
        assert child.read(BASE, 4) == b"chng"

    def test_clone_copies_vmas(self, space):
        child = space.clone()
        child.munmap(BASE, PAGE_SIZE)
        assert space.find_vma(BASE) is not None

    def test_describe_maps(self, space):
        listing = space.describe_maps()
        assert f"{BASE:#014x}" in listing
        assert "rw-" in listing
