"""Full-stack mesh tests: real kernels, real kvstore fleets.

Everything here boots actual :class:`Host` shards (own kernel, own
fleet, own supervisor) — the routing-logic edge cases live in
``test_mesh_frontend.py`` on stub hosts.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.faults import FaultPlan
from repro.fleet import FleetPolicy
from repro.mesh import (
    MeshClock,
    MeshController,
    MeshError,
    MeshRollout,
    inject_host_chaos,
)
from repro.telemetry import TelemetryHub

SECOND_NS = 1_000_000_000


def make_mesh(tmp_path, shards=2, size=1, **policy_kwargs) -> MeshController:
    policy = FleetPolicy(features=("SET",), shards=shards, **policy_kwargs)
    mesh = MeshController(
        "redis", policy, size_per_shard=size, image_root=str(tmp_path / "mesh")
    )
    mesh.spawn_mesh()
    return mesh


class TestSpawnAndStatus:
    def test_hosts_are_isolated_kernels(self, tmp_path):
        mesh = make_mesh(tmp_path, shards=2, size=2)
        kernels = {id(host.kernel) for host in mesh.hosts}
        assert len(kernels) == 2
        # same ports on every host: separate networks, no collisions
        for host in mesh.hosts:
            assert host.frontend_port == mesh.hosts[0].frontend_port
            assert host.routable()

    def test_kvstore_defaults_to_hash_routing(self, tmp_path):
        mesh = make_mesh(tmp_path)
        assert mesh.routing == "hash"

    def test_status_aggregates_all_shards(self, tmp_path):
        mesh = make_mesh(tmp_path, shards=2)
        status = mesh.status()
        assert status["shards"] == 2
        assert set(status["hosts"]) == {"host-0", "host-1"}
        assert status["frontend"]["accounted"]
        assert status["settled"]
        for name, shard in status["hosts"].items():
            assert shard["host"] == name
            assert shard["routable"]

    def test_unknown_host_ref_rejected(self, tmp_path):
        mesh = make_mesh(tmp_path)
        with pytest.raises(MeshError, match="no mesh host"):
            mesh.host("host-9")


class TestShardLabelledTelemetry:
    def test_every_shard_metric_carries_its_label(self, tmp_path):
        hub = TelemetryHub()
        with telemetry.recording(hub):
            mesh = make_mesh(tmp_path, shards=2)
            for index in range(6):
                mesh.wanted_request(key=f"key-{index}")
            mesh.crash_host(0)
            for index in range(6):
                mesh.wanted_request(key=f"key-{index}")
            mesh.clock.clock_ns = mesh.clock.clock_ns + SECOND_NS
            mesh.tick(force=True)
        dispatched = hub.registry.counters_by_label("mesh_dispatch_total", "shard")
        assert set(dispatched) <= {"host-0", "host-1"}
        assert sum(dispatched.values()) == 12
        # the intra-host balancer's dispatch events ran under the
        # shard's label scope (shard= merged into the nested emission)
        balanced = [e for e in hub.events if e.kind == "dispatch"]
        assert balanced
        assert all(e.label("shard") in ("host-0", "host-1") for e in balanced)
        # supervisor events from the crashed shard carry its label too
        supervisor = [e for e in hub.events if e.kind == "supervisor"]
        assert supervisor
        assert all(e.label("shard") == "host-0" for e in supervisor)


class TestMeshClock:
    def test_reads_max_and_broadcast_never_rewinds(self, tmp_path):
        mesh = make_mesh(tmp_path, shards=2)
        a, b = (host.kernel for host in mesh.hosts)
        a.clock_ns += 5 * SECOND_NS
        assert mesh.clock.clock_ns == a.clock_ns
        before_a = a.clock_ns
        mesh.clock.clock_ns = before_a  # broadcast: raises only b
        assert a.clock_ns == before_a
        assert b.clock_ns == before_a

    def test_data_path_is_parallel(self, tmp_path):
        # requests to shard A must not advance shard B's clock: the
        # mesh's scale-out entirely depends on this
        mesh = make_mesh(tmp_path, shards=2)
        mesh.clock.clock_ns = mesh.clock.clock_ns  # align epoch
        clocks = [host.kernel.clock_ns for host in mesh.hosts]
        for index in range(12):
            mesh.wanted_request(key=f"key-{index}")
        deltas = [
            host.kernel.clock_ns - start
            for host, start in zip(mesh.hosts, clocks)
        ]
        assert all(delta > 0 for delta in deltas)
        # mesh wall time is the max, strictly less than serialized time
        assert mesh.clock.clock_ns - max(clocks) < sum(deltas)

    def test_standalone_clock_needs_a_kernel(self):
        with pytest.raises(MeshError):
            MeshClock([])


class TestCrashAndRecovery:
    def test_crash_host_orphans_listeners_until_dispatch_bounces(self, tmp_path):
        mesh = make_mesh(tmp_path, shards=2, size=2)
        crashed = mesh.crash_host(0)
        assert len(crashed) == 2
        # the frontend has not noticed yet — a real machine loss
        assert mesh.frontend.down_hosts == []
        assert not mesh.host(0).routable()
        for index in range(12):
            assert mesh.wanted_request(key=f"key-{index}")
        stats = mesh.frontend.stats()
        assert stats["down_hosts"] == [0]
        assert stats["failed_over"] >= 1
        assert stats["shed"] == 0
        assert stats["accounted"]

    def test_tick_recovers_and_rejoins_the_host(self, tmp_path):
        mesh = make_mesh(tmp_path, shards=2, size=1)
        mesh.crash_host(0)
        for index in range(6):
            mesh.wanted_request(key=f"key-{index}")
        assert mesh.frontend.down_hosts == [0]
        for __ in range(4):
            mesh.clock.clock_ns = mesh.clock.clock_ns + SECOND_NS
            mesh.tick(force=True)
            if mesh.settled:
                break
        assert mesh.settled
        assert mesh.frontend.down_hosts == []
        assert mesh.host(0).routable()

    def test_seeded_host_chaos_fires_in_index_order(self, tmp_path):
        mesh = make_mesh(tmp_path, shards=3, size=1)
        plan = FaultPlan(seed=11).arm(
            "mesh.host_crash", "permanent", on_call=2, times=1
        )
        with plan:
            crashed = inject_host_chaos(mesh)
        assert crashed == ["host-1"]
        assert [record.detail for record in plan.log] == ["host-1"]
        assert not mesh.host(1).routable()
        assert mesh.host(0).routable() and mesh.host(2).routable()


class TestMeshRollout:
    def test_rollout_completes_shard_by_shard(self, tmp_path):
        mesh = make_mesh(tmp_path, shards=2, size=2)
        rollout = MeshRollout(mesh)
        order = []
        while not rollout.done:
            order.append(rollout.current_shard)
            rollout.step()
        report = rollout.report()
        assert report["state"] == "completed"
        assert report["completed_shards"] == ["host-0", "host-1"]
        # strictly sequential: host-1 never starts before host-0 ends
        assert order == sorted(order)
        for host in mesh.hosts:
            for instance in host.controller.instances:
                assert instance.customized

    def test_host_crash_aborts_only_the_affected_shard(self, tmp_path):
        mesh = make_mesh(tmp_path, shards=3, size=2)
        rollout = MeshRollout(mesh)
        # let shard 0 finish, then lose host-1 mid-sequence
        while rollout.current_shard == "host-0":
            rollout.step()
        mesh.crash_host(1)
        while not rollout.done:
            rollout.step()
        report = rollout.report()
        assert report["state"] == "partial"
        assert sorted(report["completed_shards"]) == ["host-0", "host-2"]
        assert list(report["aborted_shards"]) == ["host-1"]
        assert "not routable" in report["aborted_shards"]["host-1"]
        # blast radius: the other shards kept their customizations
        for index in (0, 2):
            for instance in mesh.host(index).controller.instances:
                assert instance.customized

    def test_rollout_requires_spawned_mesh(self, tmp_path):
        policy = FleetPolicy(features=("SET",), shards=1)
        mesh = MeshController(
            "redis", policy, 1, image_root=str(tmp_path / "m")
        )
        with pytest.raises(MeshError, match="spawn_mesh"):
            MeshRollout(mesh)


class TestSingleShardParity:
    def test_one_shard_mesh_is_the_classic_fleet(self, tmp_path):
        # N=1 keeps the single-kernel semantics: same controller, same
        # rollout machine, hash routing degenerates to "always shard 0"
        mesh = make_mesh(tmp_path, shards=1, size=2)
        for index in range(8):
            assert mesh.wanted_request(key=f"key-{index}")
        stats = mesh.frontend.stats()
        assert stats["dispatched"] == {"host-0": 8}
        assert stats["failed_over"] == 0
        report = MeshRollout(mesh).run()
        assert report["state"] == "completed"
