"""Tests for the injectable trap-handler library and dynacut helpers."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import build_handler_library
from repro.core.covgraph import bytes_to_ranges
from repro.core.dynacut import enclosing_function
from repro.core.sighandler import (
    HANDLER_SYMBOL,
    LOG_COUNT_SYMBOL,
    LOG_TABLE_SYMBOL,
    ORIG_TABLE_SYMBOL,
    POLICY_SYMBOL,
    REDIRECT_TABLE_SYMBOL,
    RESTORER_SYMBOL,
)
from repro.binfmt import ImageKind


class TestHandlerLibrary:
    def test_is_position_independent_shared_object(self, libc):
        library = build_handler_library(libc)
        assert library.kind is ImageKind.DYN
        assert library.base == 0
        assert library.needed == ["libc.so"]

    def test_exports_all_control_symbols(self, libc):
        library = build_handler_library(libc)
        for name in (HANDLER_SYMBOL, RESTORER_SYMBOL, POLICY_SYMBOL,
                     REDIRECT_TABLE_SYMBOL, ORIG_TABLE_SYMBOL,
                     LOG_COUNT_SYMBOL, LOG_TABLE_SYMBOL):
            assert name in library.symbols, name

    def test_imports_only_exit_and_mprotect(self, libc):
        library = build_handler_library(libc)
        assert set(library.plt_entries) == {"exit", "mprotect"}

    def test_tables_live_in_writable_data(self, libc):
        library = build_handler_library(libc)
        data = library.segment("bss")
        for name in (REDIRECT_TABLE_SYMBOL, ORIG_TABLE_SYMBOL, LOG_TABLE_SYMBOL):
            vaddr = library.symbol_address(name)
            assert data.vaddr <= vaddr < data.end, name
        assert data.perms == "rw-"

    def test_restorer_is_own_code(self, libc):
        library = build_handler_library(libc)
        text = library.segment("text")
        restorer = library.symbol_address(RESTORER_SYMBOL)
        assert text.vaddr <= restorer < text.vaddr + len(text.data)

    def test_cached_per_libc(self, libc):
        assert build_handler_library(libc) is build_handler_library(libc)


class TestEnclosingFunction:
    def test_finds_containing_function(self, redis_binary):
        addr = redis_binary.symbol_address("cmd_set")
        assert enclosing_function(redis_binary, addr) == "cmd_set"
        assert enclosing_function(redis_binary, addr + 5) == "cmd_set"

    def test_before_first_function_is_none(self, redis_binary):
        assert enclosing_function(redis_binary, 0) is None

    def test_markers_are_not_functions(self, redis_binary):
        marker = redis_binary.symbol_address("redis_unknown_cmd")
        assert enclosing_function(redis_binary, marker) == "dispatch"


class TestBytesToRanges:
    def test_empty(self):
        assert bytes_to_ranges(set()) == []

    def test_single_run(self):
        assert bytes_to_ranges({4, 5, 6}) == [(4, 3)]

    def test_multiple_runs(self):
        assert bytes_to_ranges({1, 2, 10, 12, 13}) == [(1, 2), (10, 1), (12, 2)]

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.integers(0, 500), max_size=200))
    def test_ranges_partition_the_set(self, offsets):
        ranges = bytes_to_ranges(offsets)
        rebuilt = set()
        for start, size in ranges:
            chunk = set(range(start, start + size))
            assert not (chunk & rebuilt), "ranges overlap"
            rebuilt |= chunk
        assert rebuilt == offsets
        # maximality: consecutive ranges are separated by a gap
        starts = sorted(ranges)
        for (s1, z1), (s2, __) in zip(starts, starts[1:]):
            assert s1 + z1 < s2
