"""Tests for coverage graphs, tracediff, and init-phase identification."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import CoverageGraph, TraceDiff, init_only_blocks, tracediff
from repro.tracing import BlockRecord, CoverageTrace

_records = st.builds(
    BlockRecord,
    module=st.sampled_from(["app", "libc.so"]),
    offset=st.integers(0, 2048),
    size=st.integers(1, 16),
)


def _trace(records) -> CoverageTrace:
    trace = CoverageTrace()
    for record in records:
        trace.add(record)
    return trace


def _graph(records) -> CoverageGraph:
    return CoverageGraph.from_traces(_trace(records))


class TestCoverageGraphAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_records, max_size=40), st.lists(_records, max_size=40))
    def test_difference_semantics(self, a, b):
        ga, gb = _graph(a), _graph(b)
        diff = ga.difference(gb)
        assert diff.blocks == ga.blocks - gb.blocks
        # difference preserves ga's ordering
        positions = {rec: i for i, rec in enumerate(ga.order)}
        order_keys = [positions[rec] for rec in diff.order]
        assert order_keys == sorted(order_keys)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_records, max_size=40), st.lists(_records, max_size=40))
    def test_union_and_intersection(self, a, b):
        ga, gb = _graph(a), _graph(b)
        assert ga.union(gb).blocks == ga.blocks | gb.blocks
        assert ga.intersection(gb).blocks == ga.blocks & gb.blocks

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_records, max_size=40))
    def test_difference_with_self_is_empty(self, a):
        graph = _graph(a)
        assert len(graph.difference(graph)) == 0

    def test_restrict_and_exclude_modules(self):
        graph = _graph([
            BlockRecord("app", 0, 4),
            BlockRecord("libc.so", 8, 4),
        ])
        assert len(graph.restrict_to_module("app")) == 1
        assert len(graph.without_modules({"libc.so"})) == 1
        assert graph.modules() == ["app", "libc.so"]

    def test_total_size(self):
        graph = _graph([BlockRecord("app", 0, 4), BlockRecord("app", 8, 6)])
        assert graph.total_size() == 10


class TestTraceDiff:
    def _wanted(self):
        return _trace([
            BlockRecord("app", 0, 4),      # shared dispatcher
            BlockRecord("app", 16, 4),     # GET handler
            BlockRecord("libc.so", 0, 4),
        ])

    def _undesired(self):
        return _trace([
            BlockRecord("app", 0, 4),       # shared dispatcher
            BlockRecord("app", 64, 8),      # PUT arm (unique, first)
            BlockRecord("app", 80, 8),      # PUT handler body
            BlockRecord("libc.so", 32, 4),  # library helper (filtered)
        ])

    def test_unique_blocks_identified(self):
        feature = tracediff("put", [self._wanted()], [self._undesired()], "app")
        assert {b.offset for b in feature.blocks} == {64, 80}

    def test_entry_is_first_executed(self):
        feature = tracediff("put", [self._wanted()], [self._undesired()], "app")
        assert feature.entry.offset == 64

    def test_library_blocks_filtered(self):
        feature = tracediff("put", [self._wanted()], [self._undesired()], "app")
        assert all(b.module == "app" for b in feature.blocks)

    def test_no_overlap_with_wanted(self):
        feature = tracediff("put", [self._wanted()], [self._undesired()], "app")
        wanted_blocks = self._wanted().blocks
        assert not (set(feature.blocks) & wanted_blocks)

    def test_multiple_wanted_traces_merge(self):
        extra = _trace([BlockRecord("app", 80, 8)])  # covers the PUT body
        feature = tracediff(
            "put", [self._wanted(), extra], [self._undesired()], "app"
        )
        assert {b.offset for b in feature.blocks} == {64}

    def test_extra_excluded_modules(self):
        differ = TraceDiff("app", extra_excluded_modules={"app"})
        feature = differ.feature_blocks(
            "x", [self._wanted()], [self._undesired()]
        )
        assert feature.count == 0

    def test_feature_size_accounting(self):
        feature = tracediff("put", [self._wanted()], [self._undesired()], "app")
        assert feature.total_size() == 16

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_records, max_size=30), st.lists(_records, max_size=30))
    def test_invariant_disjoint_from_wanted(self, wanted, undesired):
        feature = tracediff("f", [_trace(wanted)], [_trace(undesired)], "app")
        wanted_set = _trace(wanted).blocks
        assert not (set(feature.blocks) & wanted_set)
        assert all(b.module == "app" for b in feature.blocks)


class TestInitPhase:
    def test_init_only_subset(self):
        init = _trace([
            BlockRecord("app", 0, 4),
            BlockRecord("app", 16, 4),
            BlockRecord("app", 32, 4),
        ])
        serving = _trace([
            BlockRecord("app", 0, 4),       # executed in both phases
            BlockRecord("app", 64, 4),
        ])
        report = init_only_blocks(init, serving, "app")
        assert {b.offset for b in report.init_only} == {16, 32}
        assert report.init_executed == 3
        assert report.serving_executed == 2
        assert report.total_executed == 4
        assert abs(report.removable_fraction - 0.5) < 1e-9

    def test_module_scoping(self):
        init = _trace([BlockRecord("libc.so", 0, 4), BlockRecord("app", 0, 4)])
        serving = _trace([])
        report = init_only_blocks(init, serving, "app")
        assert {b.module for b in report.init_only} == {"app"}

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_records, max_size=30), st.lists(_records, max_size=30))
    def test_invariants(self, init, serving):
        init_trace, serving_trace = _trace(init), _trace(serving)
        report = init_only_blocks(init_trace, serving_trace, "app")

        def byte_set(records):
            out = set()
            for record in records:
                if record.module == "app":
                    out.update(range(record.offset, record.offset + record.size))
            return out

        init_bytes = byte_set(init_trace.blocks)
        serving_bytes = byte_set(serving_trace.blocks)
        removable = byte_set(report.init_only)
        # removable bytes executed during init and never while serving
        assert removable == init_bytes - serving_bytes
        # ranges are maximal: no two are adjacent or overlapping
        ranges = sorted((b.offset, b.size) for b in report.init_only)
        for (s1, z1), (s2, __) in zip(ranges, ranges[1:]):
            assert s1 + z1 < s2
        # removed blocks are real init-trace blocks with removable entries
        for block in report.removed_blocks:
            assert block in init_trace.blocks
            assert block.offset in removable

    def test_empty_phases(self):
        report = init_only_blocks(_trace([]), _trace([]), "app")
        assert report.removable_count == 0
        assert report.removable_fraction == 0.0
