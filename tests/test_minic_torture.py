"""Heavier MiniC programs: stress the code generator's corner cases."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from .helpers import exit_code_of, run_minic


class TestExpressionDepth:
    def test_deeply_nested_arithmetic(self):
        expr = "1"
        for i in range(2, 30):
            expr = f"({expr} + {i % 7})"
        total = 1 + sum(i % 7 for i in range(2, 30))
        assert exit_code_of(f"func main() {{ return ({expr}) % 251; }}") == total % 251

    def test_long_logical_chain(self):
        chain = " && ".join(f"({i} < {i + 1})" for i in range(20))
        assert exit_code_of(f"func main() {{ if ({chain}) {{ return 9; }} return 1; }}") == 9

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=10))
    def test_mixed_expression_matches_python(self, values):
        expr = " + ".join(f"({v})" for v in values)
        expected = sum(values) % 199
        code = exit_code_of(
            f"func main() {{ var r = ({expr}) % 199; if (r < 0) "
            "{ r = r + 199; } return r; }"
        )
        assert code == (expected + 199) % 199

    def test_many_locals(self):
        decls = "\n".join(f"    var v{i} = {i};" for i in range(40))
        uses = " + ".join(f"v{i}" for i in range(40))
        assert exit_code_of(
            f"func main() {{\n{decls}\n    return ({uses}) % 251; }}"
        ) == sum(range(40)) % 251


class TestDataStructures:
    def test_bubble_sort(self):
        source = r"""
var data[16];
func main() {
    var i = 0;
    while (i < 16) { data[i] = (16 - i) * 3 % 17; i = i + 1; }
    var pass = 0;
    while (pass < 16) {
        var j = 0;
        while (j < 15) {
            if (data[j] > data[j + 1]) {
                var t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
            }
            j = j + 1;
        }
        pass = pass + 1;
    }
    // verify sorted
    i = 0;
    while (i < 15) {
        if (data[i] > data[i + 1]) { return 1; }
        i = i + 1;
    }
    return data[0] + data[15];
}
"""
        values = sorted((16 - i) * 3 % 17 for i in range(16))
        assert exit_code_of(source) == values[0] + values[-1]

    def test_string_reverse_via_libc(self):
        source = r"""
extern func strlen;
extern func println;
var buf[32];
func main() {
    var s = "dynacut";
    var n = strlen(s);
    var i = 0;
    while (i < n) {
        buf[i] = load8(s + n - 1 - i);
        i = i + 1;
    }
    buf[n] = 0;
    println(buf);
    return n;
}
"""
        __, proc = run_minic(source)
        assert proc.exit_code == 7
        assert proc.stdout_text() == "tucanyd\n"

    def test_sieve_of_eratosthenes(self):
        source = r"""
var sieve[100];
func main() {
    var i = 2;
    while (i < 100) { sieve[i] = 1; i = i + 1; }
    i = 2;
    while (i * i < 100) {
        if (sieve[i]) {
            var j = i * i;
            while (j < 100) { sieve[j] = 0; j = j + i; }
        }
        i = i + 1;
    }
    var count = 0;
    i = 2;
    while (i < 100) { count = count + sieve[i]; i = i + 1; }
    return count;
}
"""
        assert exit_code_of(source) == 25   # primes below 100

    def test_function_pointer_dispatch_table(self):
        source = r"""
var table[32];
func op_add(a, b) { return a + b; }
func op_sub(a, b) { return a - b; }
func op_mul(a, b) { return a * b; }
func op_mod(a, b) { return a % b; }
func main() {
    store64(table, op_add);
    store64(table + 8, op_sub);
    store64(table + 16, op_mul);
    store64(table + 24, op_mod);
    var acc = 0;
    var i = 0;
    while (i < 4) {
        var fp = load64(table + 8 * i);
        acc = acc + fp(10, 3);
        i = i + 1;
    }
    return acc;    // 13 + 7 + 30 + 1
}
"""
        assert exit_code_of(source) == 51


class TestRecursionDepth:
    def test_ackermann_small(self):
        source = r"""
func ack(m, n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
func main() { return ack(2, 3); }
"""
        assert exit_code_of(source) == 9

    def test_deep_recursion_within_stack(self):
        # 500 frames x (~4 slots + ret addr) stays well under the 1 MiB stack
        source = r"""
func down(n) {
    if (n == 0) { return 0; }
    return 1 + down(n - 1);
}
func main() { return down(500) % 251; }
"""
        assert exit_code_of(source) == 500 % 251
