"""End-to-end DynaCut orchestrator tests: the paper's §3 flows."""

from __future__ import annotations

import pytest

from repro.apps import (
    LIGHTTPD_PORT,
    REDIS_PORT,
    stage_lighttpd,
    stage_redis,
)
from repro.apps.httpd_lighttpd import FORBIDDEN_SYMBOL, LIGHTTPD_BINARY
from repro.apps.kvstore import REDIS_BINARY
from repro.core import (
    BlockMode,
    DynaCut,
    TraceDiff,
    TrapPolicy,
    init_only_blocks,
    read_verifier_log,
)
from repro.core.rewriter import RewriteError
from repro.kernel import Kernel, Signal
from repro.tracing import BlockTracer
from repro.workloads import HttpClient, RedisClient


def _profile_redis_set(kernel, proc):
    """Trace wanted basics vs the SET feature."""
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a", "EXISTS a", "DBSIZE"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    return TraceDiff(REDIS_BINARY).feature_blocks("SET", [wanted], [undesired])


def _profile_lighttpd_dav(kernel, proc):
    tracer = BlockTracer(kernel, proc).attach()
    client = HttpClient(kernel, LIGHTTPD_PORT)
    client.get("/")
    client.head("/")
    client.options("/")
    client.post("/e", "abcd")
    wanted = tracer.nudge_dump()
    client.put("/f.txt", "hi")
    client.delete("/f.txt")
    undesired = tracer.finish()
    return TraceDiff(LIGHTTPD_BINARY).feature_blocks(
        "dav-write", [wanted], [undesired]
    )


class TestFeatureLifecycleRedis:
    def test_disable_with_redirect_then_reenable(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        feature = _profile_redis_set(kernel, proc)
        assert feature.count > 0

        dynacut = DynaCut(kernel)
        report = dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.REDIRECT,
            redirect_symbol="redis_unknown_cmd",
        )
        proc = dynacut.restored_process(proc.pid)
        client = RedisClient(kernel, REDIS_PORT)
        assert client.command("SET k v").startswith("-ERR")
        assert proc.alive
        assert client.ping()
        assert client.get("k") is None

        dynacut.enable_feature(proc.pid, feature)
        proc = dynacut.restored_process(proc.pid)
        assert client.set("k", "v2")
        assert client.get("k") == "v2"

    def test_terminate_policy_kills_on_access(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        feature = _profile_redis_set(kernel, proc)
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(proc.pid, feature, policy=TrapPolicy.TERMINATE)
        proc = dynacut.restored_process(proc.pid)
        sock = kernel.connect(REDIS_PORT)
        sock.send("SET k v\n")
        kernel.run_until(lambda: not proc.alive, max_instructions=2_000_000)
        assert not proc.alive
        assert proc.term_signal is Signal.SIGTRAP

    def test_verify_policy_heals_and_logs(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        feature = _profile_redis_set(kernel, proc)
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.VERIFY, mode=BlockMode.ALL
        )
        proc = dynacut.restored_process(proc.pid)
        client = RedisClient(kernel, REDIS_PORT)
        # the "falsely removed" feature self-heals: SET works
        assert client.set("healed", "yes")
        assert client.get("healed") == "yes"
        report = read_verifier_log(kernel, proc)
        assert not report.clean
        assert len(report.trapped_addresses) >= 1

    def test_wipe_mode_destroys_block_bytes(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        feature = _profile_redis_set(kernel, proc)
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.TERMINATE, mode=BlockMode.WIPE
        )
        proc = dynacut.restored_process(proc.pid)
        block = feature.blocks[1]
        raw = proc.memory.read_raw(block.offset, block.size)
        assert raw == b"\xcc" * block.size

    def test_report_breakdown_structure(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        feature = _profile_redis_set(kernel, proc)
        dynacut = DynaCut(kernel)
        report = dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.REDIRECT,
            redirect_symbol="redis_unknown_cmd",
        )
        breakdown = report.breakdown_ms()
        assert breakdown["checkpoint"] > 0
        assert breakdown["disable code w/ int3"] > 0
        assert breakdown["insert sighandler"] > 0
        assert breakdown["restore"] > 0
        assert abs(
            breakdown["total"]
            - sum(v for k, v in breakdown.items() if k != "total")
        ) < 1e-6
        assert dynacut.history == [report]


class TestFeatureLifecycleLighttpd:
    def test_dav_disable_403_reenable(self):
        kernel = Kernel()
        proc = stage_lighttpd(kernel)
        feature = _profile_lighttpd_dav(kernel, proc)
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.REDIRECT,
            redirect_symbol=FORBIDDEN_SYMBOL,
        )
        proc = dynacut.restored_process(proc.pid)
        client = HttpClient(kernel, LIGHTTPD_PORT)
        assert client.put("/x.txt", "data").status == 403
        assert client.get("/").status == 200
        assert proc.alive

        dynacut.enable_feature(proc.pid, feature)
        assert client.put("/x.txt", "data").status == 201
        assert client.get("/x.txt").body == b"data"

    def test_redirect_requires_symbol(self):
        kernel = Kernel()
        proc = stage_lighttpd(kernel)
        feature = _profile_lighttpd_dav(kernel, proc)
        with pytest.raises(RewriteError):
            DynaCut(kernel).disable_feature(
                proc.pid, feature, policy=TrapPolicy.REDIRECT
            )

    def test_redirect_rejects_foreign_function_target(self):
        kernel = Kernel()
        proc = stage_lighttpd(kernel)
        feature = _profile_lighttpd_dav(kernel, proc)
        # http_get is a real symbol but not the dispatcher: no unique
        # block of the feature lives inside it
        with pytest.raises(RewriteError):
            DynaCut(kernel).disable_feature(
                proc.pid, feature, policy=TrapPolicy.REDIRECT,
                redirect_symbol="http_get",
            )


class TestInitCodeRemoval:
    def _profiled_server(self):
        kernel = Kernel()
        proc = stage_redis(kernel, run_to_ready=False)
        tracer = BlockTracer(kernel, proc).attach()
        from repro.apps.kvstore import READY_LINE

        kernel.run_until(lambda: READY_LINE in proc.stdout_text())
        init_trace = tracer.nudge_dump()
        client = RedisClient(kernel, REDIS_PORT)
        for cmd in ("PING", "SET a 1", "GET a", "DEL a", "DBSIZE", "EXISTS a"):
            client.command(cmd)
        serving_trace = tracer.finish()
        report = init_only_blocks(init_trace, serving_trace, REDIS_BINARY)
        return kernel, proc, client, report

    def test_init_blocks_found(self):
        __, __, __, report = self._profiled_server()
        assert report.removable_count > 50
        assert 0.1 < report.removable_fraction < 0.9

    def test_removal_keeps_server_functional(self):
        kernel, proc, client, report = self._profiled_server()
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(
            proc.pid, REDIS_BINARY, list(report.init_only), wipe=True
        )
        proc = dynacut.restored_process(proc.pid)
        assert client.ping()
        assert client.set("post", "removal")
        assert client.get("post") == "removal"

    def test_removed_init_code_is_wiped(self):
        kernel, proc, client, report = self._profiled_server()
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(
            proc.pid, REDIS_BINARY, list(report.init_only), wipe=True
        )
        proc = dynacut.restored_process(proc.pid)
        first = report.init_only[0]
        assert proc.memory.read_raw(first.offset, first.size) == b"\xcc" * first.size

    def test_verify_mode_detects_misclassified_block(self):
        kernel, proc, client, report = self._profiled_server()
        # poison the block list with a block that IS needed for serving:
        # the cmd_get entry block
        binary = kernel.binaries[REDIS_BINARY]
        from repro.tracing import BlockRecord

        needed = BlockRecord(REDIS_BINARY, binary.symbol_address("cmd_get"), 1)
        blocks = list(report.init_only)[:40] + [needed]
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(
            proc.pid, REDIS_BINARY, blocks, verify=True
        )
        proc = dynacut.restored_process(proc.pid)
        client.set("k", "1")
        assert client.get("k") == "1"   # verifier healed cmd_get
        log = read_verifier_log(kernel, proc)
        assert needed.offset in log.trapped_addresses


class TestValidateRemovalWorkflow:
    def test_poisoned_list_converges_to_clean(self):
        """§3.2.3 end to end: verify -> log -> refine -> re-remove."""
        from repro.core import validate_removal
        from repro.tracing import BlockRecord

        kernel = Kernel()
        proc = stage_redis(kernel, run_to_ready=False)
        tracer = BlockTracer(kernel, proc).attach()
        from repro.apps.kvstore import READY_LINE

        kernel.run_until(lambda: READY_LINE in proc.stdout_text())
        init_trace = tracer.nudge_dump()
        client = RedisClient(kernel, REDIS_PORT)
        for cmd in ("PING", "SET a 1", "GET a"):
            client.command(cmd)
        serving = tracer.finish()
        report = init_only_blocks(init_trace, serving, REDIS_BINARY)

        # poison the removal list with two blocks the workload needs
        binary = kernel.binaries[REDIS_BINARY]
        poison = [
            BlockRecord(REDIS_BINARY, binary.symbol_address("cmd_get"), 1),
            BlockRecord(REDIS_BINARY, binary.symbol_address("cmd_set"), 1),
        ]
        blocks = list(report.init_only)[:30] + poison

        def exercise():
            assert client.set("v", "1")
            assert client.get("v") == "1"
            assert client.ping()

        dynacut = DynaCut(kernel)
        clean, reports = validate_removal(
            dynacut, proc.pid, REDIS_BINARY, blocks, exercise
        )
        # the poisoned blocks were detected and dropped
        assert not (set(poison) & set(clean))
        assert not reports[0].clean
        assert reports[-1].clean
        # and the service still works at the end
        exercise()
