"""Property tests: the CPU's ALU vs reference 64-bit semantics.

Each test assembles a two-instruction program around one opcode and
compares the guest result with Python's arbitrary-precision arithmetic
masked to 64 bits — the interpreter must wrap exactly like hardware.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.kernel import Kernel

from .helpers import build_asm

_MASK = (1 << 64) - 1

u64 = st.integers(0, _MASK)
nonzero = st.integers(1, _MASK)


def _signed(value: int) -> int:
    return value - (1 << 64) if value & (1 << 63) else value


def _run_binop(mnemonic: str, a: int, b: int) -> int:
    source = f"""
.global _start
_start:
    movi r1, {a}
    movi r2, {b}
    {mnemonic} r1, r2
    mov r3, r1
    movi r0, 1
    shri r3, 56        ; exit code is one byte: return the top byte
    mov r1, r3
    syscall
"""
    image = build_asm(source, f"alu_{mnemonic}")
    kernel = Kernel()
    kernel.register_binary(image)
    proc = kernel.spawn(image.name)
    kernel.run_until(lambda: not proc.alive, max_instructions=100)
    assert proc.term_signal is None, proc.term_signal
    return proc.exit_code


def _top_byte(value: int) -> int:
    return (value & _MASK) >> 56


class TestArithmetic:
    @settings(max_examples=30, deadline=None)
    @given(u64, u64)
    def test_add_wraps(self, a, b):
        assert _run_binop("add", a, b) == _top_byte(a + b)

    @settings(max_examples=30, deadline=None)
    @given(u64, u64)
    def test_sub_wraps(self, a, b):
        assert _run_binop("sub", a, b) == _top_byte(a - b)

    @settings(max_examples=20, deadline=None)
    @given(u64, u64)
    def test_mul_wraps(self, a, b):
        assert _run_binop("mul", a, b) == _top_byte(a * b)

    @settings(max_examples=20, deadline=None)
    @given(u64, nonzero)
    def test_div_truncates_toward_zero(self, a, b):
        expected = int(_signed(a) / _signed(b)) if _signed(b) != 0 else 0
        assert _run_binop("div", a, b) == _top_byte(expected)

    @settings(max_examples=20, deadline=None)
    @given(u64, nonzero)
    def test_mod_matches_c(self, a, b):
        sa, sb = _signed(a), _signed(b)
        expected = sa - int(sa / sb) * sb
        assert _run_binop("mod", a, b) == _top_byte(expected)


class TestBitwise:
    @settings(max_examples=25, deadline=None)
    @given(u64, u64)
    def test_and_or_xor(self, a, b):
        assert _run_binop("and", a, b) == _top_byte(a & b)
        assert _run_binop("or", a, b) == _top_byte(a | b)
        assert _run_binop("xor", a, b) == _top_byte(a ^ b)

    @settings(max_examples=25, deadline=None)
    @given(u64, st.integers(0, 63))
    def test_shifts_mask_count(self, a, s):
        assert _run_binop("shl", a, s) == _top_byte(a << s)
        assert _run_binop("shr", a, s) == _top_byte(a >> s)

    @settings(max_examples=15, deadline=None)
    @given(u64, st.integers(64, 1 << 63))
    def test_shift_count_taken_mod_64(self, a, s):
        assert _run_binop("shl", a, s) == _top_byte(a << (s & 63))


class TestCompare:
    @settings(max_examples=30, deadline=None)
    @given(u64, u64)
    def test_signed_comparison_flags(self, a, b):
        source = f"""
.global _start
_start:
    movi r1, {a}
    movi r2, {b}
    cmp r1, r2
    jl _less
    je _equal
    movi r1, 2         ; greater
    jmp _done
_less:
    movi r1, 0
    jmp _done
_equal:
    movi r1, 1
_done:
    movi r0, 1
    syscall
"""
        image = build_asm(source, "cmp_flags")
        kernel = Kernel()
        kernel.register_binary(image)
        proc = kernel.spawn("cmp_flags")
        kernel.run_until(lambda: not proc.alive, max_instructions=100)
        sa, sb = _signed(a), _signed(b)
        expected = 0 if sa < sb else (1 if sa == sb else 2)
        assert proc.exit_code == expected
