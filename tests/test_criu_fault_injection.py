"""Fault injection: corrupted images and the typed fault taxonomy.

Two layers of failure are covered.  Hand-corrupted images (truncated
files, swapped magics, inconsistent pagemaps) must fail loudly with
typed errors, never silently produce a half-restored process.  And the
seeded injection subsystem (:mod:`repro.faults`) must classify every
injected failure as transient (retryable) or permanent, preserve the
error chain through retry exhaustion, and leave the pipeline's
abort-safety intact (a failed dump thaws the tree it froze).
"""

from __future__ import annotations

import pytest

from repro.criu import (
    CheckpointImage,
    ImageError,
    PagemapEntry,
    RestoreError,
    checkpoint_tree,
    restore_tree,
)
from repro.apps import REDIS_PORT, stage_redis
from repro.core import CustomizationAborted, DynaCut
from repro.faults import (
    FaultPlan,
    InjectedFault,
    PermanentFault,
    TransientFault,
)
from repro.kernel import Kernel
from repro.workloads import RedisClient


@pytest.fixture()
def checkpointed():
    kernel = Kernel()
    proc = stage_redis(kernel)
    checkpoint = checkpoint_tree(kernel, proc.pid, image_dir="/tmp/criu/fi")
    return kernel, proc, checkpoint


class TestCorruptedImages:
    def test_truncated_core_image_rejected(self, checkpointed):
        kernel, proc, __ = checkpointed
        path = f"/tmp/criu/fi/core-{proc.pid}.img"
        data = kernel.fs.read_file(path)
        kernel.fs.write_file(path, data[: len(data) // 2])
        with pytest.raises(ValueError):
            CheckpointImage.load(kernel.fs, "/tmp/criu/fi")

    def test_swapped_magic_rejected(self, checkpointed):
        kernel, proc, __ = checkpointed
        core = kernel.fs.read_file(f"/tmp/criu/fi/core-{proc.pid}.img")
        kernel.fs.write_file(f"/tmp/criu/fi/mm-{proc.pid}.img", core)
        with pytest.raises(ImageError):
            CheckpointImage.load(kernel.fs, "/tmp/criu/fi")

    def test_missing_image_file_rejected(self, checkpointed):
        kernel, proc, __ = checkpointed
        kernel.fs.unlink(f"/tmp/criu/fi/pages-{proc.pid}.img")
        with pytest.raises(Exception):
            CheckpointImage.load(kernel.fs, "/tmp/criu/fi")

    def test_missing_backing_binary_rejected(self, checkpointed):
        kernel, proc, checkpoint = checkpointed
        del kernel.binaries["miniredis"]
        with pytest.raises(RestoreError):
            restore_tree(kernel, checkpoint)

    def test_pagemap_pages_mismatch_detected(self, checkpointed):
        kernel, proc, checkpoint = checkpointed
        image = checkpoint.processes[0]
        # claim one more page than the blob holds
        entry = image.pagemap.entries[-1]
        image.pagemap.entries[-1] = PagemapEntry(entry.vaddr, entry.nr_pages + 4)
        with pytest.raises(Exception):
            restore_tree(kernel, checkpoint)
            # if restore tolerated it, reading the claimed range must fail
            image.read_memory(entry.vaddr + entry.size, 1)

    def test_overlapping_vmas_rejected_at_restore(self, checkpointed):
        kernel, proc, checkpoint = checkpointed
        image = checkpoint.processes[0]
        first = image.mm.vmas[0]
        from repro.criu import VmaEntry

        image.mm.vmas.append(
            VmaEntry(first.start, first.end, "rw-", "", 0, "evil-dup")
        )
        with pytest.raises(Exception):
            restore_tree(kernel, checkpoint)


class TestPartialFailureContainment:
    def test_failed_restore_leaves_no_live_process(self, checkpointed):
        kernel, proc, checkpoint = checkpointed
        del kernel.binaries["miniredis"]
        with pytest.raises(RestoreError):
            restore_tree(kernel, checkpoint)
        survivor = kernel.processes.get(proc.pid)
        assert survivor is None or not survivor.alive

    def test_rewriter_error_reported_with_context(self, checkpointed):
        from repro.core.rewriter import ImageRewriter, RewriteError
        from repro.tracing import BlockRecord

        kernel, proc, checkpoint = checkpointed
        rewriter = ImageRewriter(kernel, checkpoint)
        with pytest.raises(RewriteError) as excinfo:
            # address far outside any dumped region
            rewriter.block_entry_int3(
                "miniredis", [BlockRecord("miniredis", 0xDEAD0000, 4)]
            )
        assert "0xdead0000" in str(excinfo.value).lower()


class TestTypedFaultTaxonomy:
    """Injected faults are typed: transient retries, permanent aborts."""

    def test_taxonomy_hierarchy(self):
        assert issubclass(TransientFault, InjectedFault)
        assert issubclass(PermanentFault, InjectedFault)
        assert TransientFault.kind == "transient"
        assert PermanentFault.kind == "permanent"
        # transient is never a subtype of permanent or vice versa: the
        # engine's except clauses rely on the split
        assert not issubclass(TransientFault, PermanentFault)
        assert not issubclass(PermanentFault, TransientFault)

    def test_injected_fault_carries_site_and_call(self):
        plan = FaultPlan(seed=0).arm("restore.memory", "permanent", on_call=2)
        with plan:
            assert plan.check("restore.memory", "pid=7") is None
            fault = plan.check("restore.memory", "pid=7")
        assert isinstance(fault, PermanentFault)
        assert fault.site == "restore.memory"
        assert fault.call_index == 2
        assert "pid=7" in str(fault)

    def test_torn_write_persists_truncated_prefix(self):
        kernel = Kernel()
        payload = bytes(range(256)) * 4
        plan = FaultPlan(seed=11).arm(
            "fs.write_file", "transient", on_call=1, torn=True
        )
        with plan:
            with pytest.raises(TransientFault) as excinfo:
                kernel.fs.write_file("/tmp/torn", payload)
        surviving = kernel.fs.read_file("/tmp/torn")
        fault = excinfo.value
        assert fault.fraction is not None
        assert 0.1 <= fault.fraction <= 0.9
        assert len(surviving) == fault.keep_bytes(len(payload))
        assert 0 < len(surviving) < len(payload)
        assert surviving == payload[: len(surviving)]
        # a retried write repairs the torn file (the transient contract)
        kernel.fs.write_file("/tmp/torn", payload)
        assert kernel.fs.read_file("/tmp/torn") == payload

    def test_plain_write_fault_persists_nothing(self):
        kernel = Kernel()
        plan = FaultPlan(seed=1).arm("fs.write_file", "permanent", on_call=1)
        with plan:
            with pytest.raises(PermanentFault):
                kernel.fs.write_file("/tmp/gone", b"data")
        assert not kernel.fs.exists("/tmp/gone")

    def test_failed_dump_thaws_the_frozen_tree(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        plan = FaultPlan(seed=2).arm(
            "checkpoint.dump_pages", "permanent", on_call=1
        )
        with plan:
            with pytest.raises(PermanentFault):
                checkpoint_tree(kernel, proc.pid, image_dir="/tmp/criu/thaw")
        # abort-safe: nothing was destroyed and nothing stayed frozen
        assert proc.alive
        assert client.ping()
        assert client.set("after", "dump-fault")
        assert client.get("after") == "dump-fault"

    def test_retry_exhaustion_preserves_error_chain(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        dynacut = DynaCut(kernel)
        # every dump attempt fails before the tree is destroyed, so the
        # engine retries until the budget is gone
        plan = FaultPlan(seed=3).arm(
            "checkpoint.dump_pages", "transient", probability=1.0, times=0
        )
        with plan:
            with pytest.raises(CustomizationAborted) as excinfo:
                dynacut.customize(proc.pid, lambda rw: None)
        chain = excinfo.value.__cause__
        assert isinstance(chain, TransientFault)
        assert chain.site == "checkpoint.dump_pages"
        assert excinfo.value.report.attempts == dynacut.max_attempts
        assert plan.fired == dynacut.max_attempts
        # dump faults never destroy the tree: the service kept running
        assert proc.alive
        assert RedisClient(kernel, REDIS_PORT).ping()
