"""Fault injection: corrupted or incomplete checkpoint images.

Restore must fail loudly (typed errors), never silently produce a
half-restored process; and the checkpoint directory layout must detect
tampering at the serialization layer.
"""

from __future__ import annotations

import pytest

from repro.criu import (
    CheckpointImage,
    ImageError,
    PagemapEntry,
    RestoreError,
    checkpoint_tree,
    restore_tree,
)
from repro.apps import stage_redis
from repro.kernel import Kernel


@pytest.fixture()
def checkpointed():
    kernel = Kernel()
    proc = stage_redis(kernel)
    checkpoint = checkpoint_tree(kernel, proc.pid, image_dir="/tmp/criu/fi")
    return kernel, proc, checkpoint


class TestCorruptedImages:
    def test_truncated_core_image_rejected(self, checkpointed):
        kernel, proc, __ = checkpointed
        path = f"/tmp/criu/fi/core-{proc.pid}.img"
        data = kernel.fs.read_file(path)
        kernel.fs.write_file(path, data[: len(data) // 2])
        with pytest.raises(ValueError):
            CheckpointImage.load(kernel.fs, "/tmp/criu/fi")

    def test_swapped_magic_rejected(self, checkpointed):
        kernel, proc, __ = checkpointed
        core = kernel.fs.read_file(f"/tmp/criu/fi/core-{proc.pid}.img")
        kernel.fs.write_file(f"/tmp/criu/fi/mm-{proc.pid}.img", core)
        with pytest.raises(ImageError):
            CheckpointImage.load(kernel.fs, "/tmp/criu/fi")

    def test_missing_image_file_rejected(self, checkpointed):
        kernel, proc, __ = checkpointed
        kernel.fs.unlink(f"/tmp/criu/fi/pages-{proc.pid}.img")
        with pytest.raises(Exception):
            CheckpointImage.load(kernel.fs, "/tmp/criu/fi")

    def test_missing_backing_binary_rejected(self, checkpointed):
        kernel, proc, checkpoint = checkpointed
        del kernel.binaries["miniredis"]
        with pytest.raises(RestoreError):
            restore_tree(kernel, checkpoint)

    def test_pagemap_pages_mismatch_detected(self, checkpointed):
        kernel, proc, checkpoint = checkpointed
        image = checkpoint.processes[0]
        # claim one more page than the blob holds
        entry = image.pagemap.entries[-1]
        image.pagemap.entries[-1] = PagemapEntry(entry.vaddr, entry.nr_pages + 4)
        with pytest.raises(Exception):
            restore_tree(kernel, checkpoint)
            # if restore tolerated it, reading the claimed range must fail
            image.read_memory(entry.vaddr + entry.size, 1)

    def test_overlapping_vmas_rejected_at_restore(self, checkpointed):
        kernel, proc, checkpoint = checkpointed
        image = checkpoint.processes[0]
        first = image.mm.vmas[0]
        from repro.criu import VmaEntry

        image.mm.vmas.append(
            VmaEntry(first.start, first.end, "rw-", "", 0, "evil-dup")
        )
        with pytest.raises(Exception):
            restore_tree(kernel, checkpoint)


class TestPartialFailureContainment:
    def test_failed_restore_leaves_no_live_process(self, checkpointed):
        kernel, proc, checkpoint = checkpointed
        del kernel.binaries["miniredis"]
        with pytest.raises(RestoreError):
            restore_tree(kernel, checkpoint)
        survivor = kernel.processes.get(proc.pid)
        assert survivor is None or not survivor.alive

    def test_rewriter_error_reported_with_context(self, checkpointed):
        from repro.core.rewriter import ImageRewriter, RewriteError
        from repro.tracing import BlockRecord

        kernel, proc, checkpoint = checkpointed
        rewriter = ImageRewriter(kernel, checkpoint)
        with pytest.raises(RewriteError) as excinfo:
            # address far outside any dumped region
            rewriter.block_entry_int3(
                "miniredis", [BlockRecord("miniredis", 0xDEAD0000, 4)]
            )
        assert "0xdead0000" in str(excinfo.value).lower()
