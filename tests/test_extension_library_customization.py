"""§5 extension: dynamically customizing *shared library* code.

The paper leaves library customization as future work ("a significant
amount of initialization code in the standard C library ... unused
shared library code can be dynamically unloaded through the process
rewriting approach").  The mechanism here supports it directly: the
init/serving split and the rewriter are module-parametric, so libc's
init-only blocks can be wiped exactly like the application's.
"""

from __future__ import annotations

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import READY_LINE
from repro.core import DynaCut, init_only_blocks
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import RedisClient

LIBC = "libc.so"


def _profiled():
    kernel = Kernel()
    proc = stage_redis(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: READY_LINE in proc.stdout_text())
    init_trace = tracer.nudge_dump()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "SET a 1", "GET a", "DEL a", "EXISTS a", "DBSIZE",
                "INCR n", "APPEND a x", "STRLEN a", "GETRANGE a 0 1",
                "CONFIG GET port", "ECHO hi", "FLUSHALL", "INFO"):
        client.command(cmd)
    serving_trace = tracer.finish()
    return kernel, proc, client, init_trace, serving_trace


class TestLibraryCustomization:
    def test_libc_has_init_only_code(self):
        __, __, __, init_trace, serving_trace = _profiled()
        report = init_only_blocks(init_trace, serving_trace, LIBC)
        # config parsing (open/read/atoi paths) runs only during init
        assert report.removable_count > 0
        assert report.removable_bytes() > 0

    def test_wiping_libc_init_code_keeps_server_working(self):
        kernel, proc, client, init_trace, serving_trace = _profiled()
        report = init_only_blocks(init_trace, serving_trace, LIBC)
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(
            proc.pid, LIBC, list(report.init_only), wipe=True
        )
        proc = dynacut.restored_process(proc.pid)
        # the full serving command set still works with libc slimmed
        assert client.ping()
        assert client.set("post", "libc-cut")
        assert client.get("post") == "libc-cut"
        assert client.command("APPEND post !") == ":9"
        assert proc.alive

    def test_wiped_libc_bytes_are_int3_at_library_base(self):
        kernel, proc, client, init_trace, serving_trace = _profiled()
        report = init_only_blocks(init_trace, serving_trace, LIBC)
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(
            proc.pid, LIBC, list(report.init_only), wipe=True
        )
        proc = dynacut.restored_process(proc.pid)
        libc_module = next(m for m in proc.modules if m.name == LIBC)
        block = report.init_only[0]
        raw = proc.memory.read_raw(libc_module.load_base + block.offset,
                                   block.size)
        assert raw == b"\xcc" * block.size

    def test_app_and_library_customized_in_one_session(self):
        """App init code and libc init code removed in a single rewrite."""
        kernel, proc, client, init_trace, serving_trace = _profiled()
        app_report = init_only_blocks(init_trace, serving_trace, "miniredis")
        libc_report = init_only_blocks(init_trace, serving_trace, LIBC)

        dynacut = DynaCut(kernel)

        def actions(rewriter):
            rewriter.wipe_blocks("miniredis", list(app_report.init_only))
            rewriter.wipe_blocks(LIBC, list(libc_report.init_only))

        report = dynacut.customize(proc.pid, actions)
        proc = dynacut.restored_process(proc.pid)
        assert report.stats.bytes_wiped == (
            app_report.removable_bytes() + libc_report.removable_bytes()
        )
        assert client.ping()
        assert client.set("both", "cut")
        assert client.get("both") == "cut"
