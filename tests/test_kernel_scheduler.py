"""Scheduler semantics: quantum batching, determinism, host sockets."""

from __future__ import annotations

from repro.apps import libc_image
from repro.kernel import Kernel, ProcessState

from .helpers import build_minic

_PROGRAM = (
    "extern func print_num;\n"
    "func main() { var acc = 0; var i = 0; while (i < 300) "
    "{ acc = (acc * 7 + i) % 1000; i = i + 1; } print_num(acc); return acc % 97; }"
)


def _spawn(kernel: Kernel, image):
    if "libc.so" in image.needed:
        kernel.register_binary(libc_image())
    kernel.register_binary(image)
    return kernel.spawn(image.name)


class TestQuantumParity:
    def test_single_step_and_quantum_agree(self):
        image = build_minic(_PROGRAM, "parity")

        # reference: pure single-stepping
        kernel_a = Kernel()
        proc_a = _spawn(kernel_a, image)
        while proc_a.alive:
            kernel_a.cpu.step(proc_a)
        # quantum batching through the scheduler
        kernel_b = Kernel()
        proc_b = _spawn(kernel_b, image)
        kernel_b.run_until(lambda: not proc_b.alive)

        assert proc_a.exit_code == proc_b.exit_code
        assert proc_a.stdout_text() == proc_b.stdout_text()
        assert proc_a.instructions_retired == proc_b.instructions_retired

    def test_runs_are_deterministic(self):
        image = build_minic(_PROGRAM, "det")
        outcomes = []
        for __ in range(2):
            kernel = Kernel()
            proc = _spawn(kernel, image)
            kernel.run_until(lambda: not proc.alive)
            outcomes.append(
                (proc.exit_code, proc.instructions_retired, kernel.clock_ns)
            )
        assert outcomes[0] == outcomes[1]

    def test_clock_advances_per_instruction(self):
        image = build_minic("func main() { return 0; }", "clocked",
                            with_libc=False)
        kernel = Kernel()
        proc = _spawn(kernel, image)
        kernel.run_until(lambda: not proc.alive)
        expected_min = proc.instructions_retired * kernel.config.instruction_cost_ns
        assert kernel.clock_ns >= expected_min


class TestQuiescence:
    def test_quiescent_when_all_exit(self):
        image = build_minic("func main() { return 0; }", "quiet",
                            with_libc=False)
        kernel = Kernel()
        _spawn(kernel, image)
        assert kernel.run_until_quiescent()
        assert not kernel.runnable_processes()

    def test_quiescent_when_blocked_on_io(self):
        image = build_minic(
            "extern func socket; extern func bind; extern func listen; "
            "extern func accept;\n"
            "func main() { var s = socket(); bind(s, 4001); listen(s, 1); "
            "accept(s); return 0; }",
            "blocker",
        )
        kernel = Kernel()
        proc = _spawn(kernel, image)
        assert kernel.run_until_quiescent()
        assert proc.state is ProcessState.BLOCKED

    def test_spinner_exhausts_budget(self):
        image = build_minic("func main() { while (1) { } return 0; }",
                            "spinner", with_libc=False)
        kernel = Kernel()
        _spawn(kernel, image)
        assert not kernel.run_until_quiescent(max_instructions=2_000)


class TestHostSocketEdges:
    def test_recv_until_returns_partial_on_eof(self):
        source = (
            "extern func socket; extern func bind; extern func listen;\n"
            "extern func accept; extern func send; extern func close;\n"
            "extern func println;\n"
            "func main() { var s = socket(); bind(s, 4002); listen(s, 1); "
            'println("up"); var c = accept(s); send(c, "nodelim", 7); '
            "close(c); return 0; }"
        )
        image = build_minic(source, "eofer")
        kernel = Kernel()
        proc = _spawn(kernel, image)
        kernel.run_until(lambda: "up" in proc.stdout_text())
        sock = kernel.connect(4002)
        data = sock.recv_until(b"\n", max_instructions=500_000)
        assert data == b"nodelim"

    def test_send_to_dead_server_raises(self):
        image = build_minic(
            "extern func socket; extern func bind; extern func listen;\n"
            "extern func accept; extern func close; extern func println;\n"
            'func main() { var s = socket(); bind(s, 4003); listen(s, 1); '
            'println("up"); var c = accept(s); close(c); return 0; }',
            "closer",
        )
        kernel = Kernel()
        proc = _spawn(kernel, image)
        kernel.run_until(lambda: "up" in proc.stdout_text())
        sock = kernel.connect(4003)
        kernel.run_until(lambda: not proc.alive)
        import pytest

        with pytest.raises(ConnectionError):
            sock.send(b"hello?")
