"""Tests for the FleetController lifecycle verbs."""

from __future__ import annotations

import pytest

from repro.fleet import (
    FleetAppError,
    FleetController,
    FleetError,
    FleetPolicy,
    InstanceState,
    get_app,
)
from repro.kernel import Kernel
from repro.workloads import HttpClient


def make_fleet(size=2, app="lighttpd", **policy_kwargs):
    policy_kwargs.setdefault("features", get_app(app).features)
    policy_kwargs.setdefault("probe_requests", 2)
    controller = FleetController(
        Kernel(), app, FleetPolicy(**policy_kwargs), size=size
    )
    controller.spawn_fleet()
    return controller


@pytest.fixture()
def fleet():
    return make_fleet(size=2)


class TestSpawn:
    def test_instances_on_distinct_ports_all_serving(self, fleet):
        ports = [instance.port for instance in fleet.instances]
        assert len(set(ports)) == 2
        for instance in fleet.instances:
            assert fleet.alive(instance)
            assert fleet.app.wanted_request(fleet.kernel, instance.port)

    def test_frontend_balances_over_instances(self, fleet):
        for __ in range(4):
            assert HttpClient(fleet.kernel, fleet.frontend_port).get("/").ok
        assert all(count == 2 for count in fleet.pool.dispatched.values())

    def test_engines_are_isolated(self, fleet):
        a, b = fleet.instances
        assert a.engine is not b.engine
        assert a.engine.image_dir != b.engine.image_dir

    def test_double_spawn_rejected(self, fleet):
        with pytest.raises(FleetError):
            fleet.spawn_fleet()

    def test_unknown_app_rejected(self):
        with pytest.raises(FleetAppError):
            FleetController(
                Kernel(), "apache", FleetPolicy(features=("f",)), size=1
            )

    def test_instance_lookup_by_index_and_name(self, fleet):
        assert fleet.instance(0) is fleet.instances[0]
        assert fleet.instance("lighttpd-1") is fleet.instances[1]
        with pytest.raises(FleetError):
            fleet.instance("lighttpd-9")


class TestRotation:
    def test_drain_takes_instance_out_of_rotation(self, fleet):
        target = fleet.instances[0]
        fleet.drain(target)
        assert target.state is InstanceState.DRAINED
        for __ in range(3):
            HttpClient(fleet.kernel, fleet.frontend_port).get("/")
        assert fleet.pool.dispatched[target.port] == 0
        assert fleet.pool.dispatched[fleet.instances[1].port] == 3

    def test_rejoin_restores_rotation(self, fleet):
        target = fleet.instances[0]
        fleet.drain(target)
        fleet.rejoin(target)
        assert target.state is InstanceState.IN_SERVICE
        assert target.port in fleet.pool.in_service()


class TestCustomizeAndProbe:
    def test_customize_blocks_feature_on_one_instance_only(self, fleet):
        target, other = fleet.instances
        fleet.drain(target)
        reports = fleet.customize(target)
        assert len(reports) == 1 and reports[0].stats.blocks_patched > 0
        assert target.customized_features == ["dav-write"]
        # feature is blocked on the customized instance...
        assert not fleet.app.feature_request(
            fleet.kernel, target.port, "dav-write"
        )
        # ...and untouched on the other
        assert fleet.app.feature_request(
            fleet.kernel, other.port, "dav-write"
        )

    def test_probe_passes_on_customized_instance(self, fleet):
        target = fleet.instances[0]
        fleet.drain(target)
        fleet.customize(target)
        probe = fleet.probe(target)
        assert probe.success_rate == 1.0
        assert probe.features_blocked == {"dav-write": True}
        assert probe.passed(fleet.policy)

    def test_probe_fails_on_pristine_instance(self, fleet):
        # a pristine instance still serves the feature, so the
        # blocked-gate must fail — the probe really measures the rewrite
        probe = fleet.probe(fleet.instances[0])
        assert probe.features_blocked == {"dav-write": False}
        assert not probe.passed(fleet.policy)

    def test_rollback_restores_the_feature(self, fleet):
        target = fleet.instances[0]
        fleet.drain(target)
        fleet.customize(target)
        assert fleet.rollback(target) == ["dav-write"]
        assert not target.customized
        assert fleet.app.feature_request(
            fleet.kernel, target.port, "dav-write"
        )


class TestStatus:
    def test_status_reports_fleet_shape(self, fleet):
        status = fleet.status()
        assert status["app"] == "lighttpd"
        assert status["size"] == 2
        assert len(status["instances"]) == 2
        assert status["pool"]["backends"] == [9000, 9001]
        entry = status["instances"][0]
        assert entry["alive"] and entry["state"] == "in-service"

    def test_module_base_resolves_app_binary(self, fleet):
        proc = fleet.process(fleet.instances[0])
        expected = next(
            m.load_base for m in proc.modules if m.name == fleet.app.binary
        )
        assert fleet.module_base(fleet.instances[0]) == expected


class TestRedisFleet:
    def test_redis_fleet_spawn_and_customize(self):
        controller = make_fleet(size=2, app="redis")
        target = controller.instances[0]
        controller.drain(target)
        controller.customize(target)
        assert not controller.app.feature_request(
            controller.kernel, target.port, "SET"
        )
        assert controller.app.wanted_request(controller.kernel, target.port)
