"""Transactional customize(): journal, pristine images, rollback.

The engine's contract: a customize session either commits (rewritten
tree live) or rolls back (pristine tree live) — never anything in
between — and the journal in the image directory records exactly how
far each attempt got.
"""

from __future__ import annotations

import pytest

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.core import (
    CustomizationAborted,
    DynaCut,
    JournalEntry,
    RollbackFailed,
    TraceDiff,
    TrapPolicy,
    TxJournal,
)
from repro.core.transaction import (
    PHASE_COMMITTED,
    PHASE_RETRYING,
    PHASE_ROLLED_BACK,
)
from repro.criu.images import CheckpointImage
from repro.faults import FaultPlan, TransientFault
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import RedisClient

IMAGE_DIR = "/tmp/criu/dynacut"


def _staged():
    kernel = Kernel()
    proc = stage_redis(kernel)
    client = RedisClient(kernel, REDIS_PORT)
    return kernel, proc, client


def _profile_set(kernel, proc):
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    return TraceDiff(REDIS_BINARY).feature_blocks("SET", [wanted], [undesired])


class TestCommitPath:
    def test_commit_journal_and_report(self):
        kernel, proc, client = _staged()
        dynacut = DynaCut(kernel)
        report = dynacut.customize(proc.pid, lambda rw: None)
        assert report.outcome == "committed"
        assert report.attempts == 1
        assert not report.rolled_back
        journal = dynacut.last_journal
        assert journal.phase == PHASE_COMMITTED
        assert journal.phases(attempt=1) == [
            "begin", "checkpointed", "pristine-saved", "rewritten",
            "saved", "restored", "committed",
        ]
        assert client.ping()

    def test_journal_persisted_in_image_dir(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel)
        dynacut.customize(proc.pid, lambda rw: None)
        loaded = TxJournal.load(kernel.fs, dynacut.image_dir)
        assert loaded.phase == PHASE_COMMITTED
        assert loaded.entries == dynacut.last_journal.entries

    def test_journal_entry_round_trip(self):
        entry = JournalEntry("restored", 2, 123456, "note with spaces")
        assert JournalEntry.parse(entry.line()) == entry

    def test_pristine_dir_holds_unmutated_images(self):
        kernel, proc, __ = _staged()
        feature = _profile_set(kernel, proc)
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.TERMINATE
        )
        entry = feature.entry
        pristine = CheckpointImage.load(kernel.fs, dynacut.pristine_dir)
        working = CheckpointImage.load(kernel.fs, dynacut.image_dir)
        original = kernel.binaries[REDIS_BINARY].read_bytes(entry.offset, 1)
        assert pristine.root().read_memory(entry.offset, 1) == original
        assert working.root().read_memory(entry.offset, 1) == b"\xcc"


class TestLintStrictReject:
    """Regression: a strict-lint rejection must not kill the service.

    Before the transactional engine, checkpoint.save() had already
    overwritten the only on-disk copy of the pristine images and the
    tree was already destroyed by the dump, so a strict reject left the
    service dead with no way back.
    """

    def _corrupting_actions(self, kernel):
        # a non-int3 byte in executable code is structural damage the
        # lint flags as DL103
        address = kernel.binaries[REDIS_BINARY].symbol_address("cmd_get")

        def actions(rewriter):
            image, base = rewriter.images_mapping(REDIS_BINARY)[0]
            image.write_memory(base + address, b"\x90")

        return address, actions

    def test_lint_strict_reject_leaves_service_running(self):
        kernel, proc, client = _staged()
        dynacut = DynaCut(kernel, lint_mode="always", lint_strict=True)
        address, actions = self._corrupting_actions(kernel)

        with pytest.raises(CustomizationAborted) as excinfo:
            dynacut.customize(proc.pid, actions)
        assert "dynalint rejected" in str(excinfo.value)

        # the service survived the rejection, unmodified
        proc = dynacut.restored_process(proc.pid)
        assert proc.alive
        assert client.ping()
        assert client.set("k", "v")
        assert client.get("k") == "v"

        # and the live code carries the pristine byte, not the damage
        original = kernel.binaries[REDIS_BINARY].read_bytes(address, 1)
        assert proc.memory.read_raw(address, 1) == original

    def test_reject_restores_pristine_on_disk_images(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel, lint_mode="always", lint_strict=True)
        address, actions = self._corrupting_actions(kernel)
        with pytest.raises(CustomizationAborted):
            dynacut.customize(proc.pid, actions)
        # the working directory holds pristine images again (the
        # rewritten save was rolled back), so a crash-recovery restore
        # from disk would also come up clean
        working = CheckpointImage.load(kernel.fs, dynacut.image_dir)
        original = kernel.binaries[REDIS_BINARY].read_bytes(address, 1)
        assert working.root().read_memory(address, 1) == original
        assert dynacut.last_journal.phase == PHASE_ROLLED_BACK

    def test_reject_report_recorded_as_rolled_back(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel, lint_mode="always", lint_strict=True)
        __, actions = self._corrupting_actions(kernel)
        with pytest.raises(CustomizationAborted) as excinfo:
            dynacut.customize(proc.pid, actions)
        report = excinfo.value.report
        assert report is not None
        assert report.outcome == "rolled-back"
        assert report.rolled_back
        assert dynacut.history[-1] is report


class TestTransientRetry:
    def test_single_transient_fault_retries_then_commits(self):
        kernel, proc, client = _staged()
        dynacut = DynaCut(kernel)
        plan = FaultPlan(seed=7).arm(
            "restore.memory", "transient", on_call=1
        )
        with plan:
            report = dynacut.customize(proc.pid, lambda rw: None)
        assert report.outcome == "committed"
        assert report.attempts == 2
        assert plan.fired == 1
        journal = dynacut.last_journal
        assert PHASE_ROLLED_BACK in journal.phases(attempt=1)
        assert PHASE_RETRYING in journal.phases(attempt=1)
        assert journal.phases(attempt=2)[-1] == PHASE_COMMITTED
        assert client.ping()

    def test_backoff_charged_to_virtual_clock(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel)
        # dump fails before the tree is destroyed: the only extra cost
        # over a clean run is the re-dump and the backoff
        plan = FaultPlan(seed=1).arm(
            "checkpoint.dump_pages", "transient", on_call=1
        )
        with plan:
            dynacut.customize(proc.pid, lambda rw: None)
        journal = dynacut.last_journal
        retrying = [e for e in journal.entries if e.phase == PHASE_RETRYING]
        assert len(retrying) == 1
        assert retrying[0].note == (
            f"backoff={dynacut.cost_model.retry_backoff(1)}ns"
        )

    def test_retry_is_deterministic(self):
        def campaign():
            kernel, proc, __ = _staged()
            dynacut = DynaCut(kernel)
            plan = FaultPlan(seed=42).arm(
                "restore.fds", "transient", probability=0.8, times=2
            )
            with plan:
                dynacut.customize(proc.pid, lambda rw: None)
            return (
                [(r.site, r.call_index, r.kind) for r in plan.log],
                dynacut.last_journal.serialize(),
            )

        assert campaign() == campaign()

    def test_retry_exhaustion_aborts_with_fault_chain(self):
        kernel, proc, client = _staged()
        dynacut = DynaCut(kernel)
        # restore.memory is visited alternately by the attempt and by
        # the rollback: calls 1, 3, 5 are the three attempts
        plan = FaultPlan(seed=0)
        for call in (1, 3, 5):
            plan.arm("restore.memory", "transient", on_call=call)
        with plan:
            with pytest.raises(CustomizationAborted) as excinfo:
                dynacut.customize(proc.pid, lambda rw: None)
        assert isinstance(excinfo.value.__cause__, TransientFault)
        assert excinfo.value.__cause__.site == "restore.memory"
        assert excinfo.value.report.attempts == dynacut.max_attempts
        assert plan.fired == 3
        # the service rolled back and keeps serving
        assert dynacut.restored_process(proc.pid).alive
        assert client.ping()


class TestPermanentFault:
    def test_permanent_fault_rolls_back_first_attempt(self):
        kernel, proc, client = _staged()
        feature = _profile_set(kernel, proc)
        dynacut = DynaCut(kernel)
        # image.save call 3 is the rewritten-image save (1 = the dump's
        # own save, 2 = the pristine save)
        plan = FaultPlan(seed=3).arm("image.save", "permanent", on_call=3)
        with plan:
            with pytest.raises(CustomizationAborted) as excinfo:
                dynacut.disable_feature(
                    proc.pid, feature, policy=TrapPolicy.TERMINATE
                )
        assert excinfo.value.report.attempts == 1
        assert dynacut.last_journal.phase == PHASE_ROLLED_BACK
        # rolled back: the feature was never disabled
        assert dynacut.disabled_features(proc.pid) == []
        assert client.ping()
        assert client.set("still", "works")

    def test_rollback_failed_when_faults_saturate_restore(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel)
        plan = FaultPlan(seed=9).arm(
            "restore.memory", "transient", probability=1.0, times=0
        )
        with plan:
            with pytest.raises(RollbackFailed):
                dynacut.customize(proc.pid, lambda rw: None)
        # the one scenario where the service is genuinely down
        survivor = kernel.processes.get(proc.pid)
        assert survivor is None or not survivor.alive


class TestEnableFeatureRecord:
    def test_disabled_record_survives_aborted_reenable(self):
        kernel, proc, client = _staged()
        feature = _profile_set(kernel, proc)
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.REDIRECT,
            redirect_symbol="redis_unknown_cmd",
        )
        assert dynacut.disabled_features(proc.pid) == ["SET"]
        assert client.command("SET k v").startswith("-ERR")

        plan = FaultPlan(seed=5).arm("restore.memory", "permanent", on_call=1)
        with plan:
            with pytest.raises(CustomizationAborted):
                dynacut.enable_feature(proc.pid, feature)
        # the re-enable rolled back: the feature is still disabled and
        # the record survived for the retry
        assert dynacut.disabled_features(proc.pid) == ["SET"]
        assert client.command("SET k v").startswith("-ERR")

        dynacut.enable_feature(proc.pid, feature)
        assert dynacut.disabled_features(proc.pid) == []
        assert client.set("k", "v2")
        assert client.get("k") == "v2"
