"""Transactional customize(): journal, pristine images, rollback.

The engine's contract: a customize session either commits (rewritten
tree live) or rolls back (pristine tree live) — never anything in
between — and the journal in the image directory records exactly how
far each attempt got.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.core import (
    BlockMode,
    CustomizationAborted,
    DynaCut,
    JournalEntry,
    RewriteError,
    RollbackFailed,
    TraceDiff,
    TrapPolicy,
    TxJournal,
)
from repro.core.transaction import (
    PHASE_COMMITTED,
    PHASE_RETRYING,
    PHASE_ROLLED_BACK,
)
from repro.criu.images import CheckpointImage
from repro.faults import FaultPlan, TransientFault
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import RedisClient

IMAGE_DIR = "/tmp/criu/dynacut"


def _staged():
    kernel = Kernel()
    proc = stage_redis(kernel)
    client = RedisClient(kernel, REDIS_PORT)
    return kernel, proc, client


def _profile_set(kernel, proc):
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    return TraceDiff(REDIS_BINARY).feature_blocks("SET", [wanted], [undesired])


class TestCommitPath:
    def test_commit_journal_and_report(self):
        kernel, proc, client = _staged()
        dynacut = DynaCut(kernel)
        report = dynacut.customize(proc.pid, lambda rw: None)
        assert report.outcome == "committed"
        assert report.attempts == 1
        assert not report.rolled_back
        journal = dynacut.last_journal
        assert journal.phase == PHASE_COMMITTED
        assert journal.phases(attempt=1) == [
            "begin", "checkpointed", "pristine-saved", "rewritten",
            "saved", "restored", "committed",
        ]
        assert client.ping()

    def test_journal_persisted_in_image_dir(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel)
        dynacut.customize(proc.pid, lambda rw: None)
        loaded = TxJournal.load(kernel.fs, dynacut.image_dir)
        assert loaded.phase == PHASE_COMMITTED
        assert loaded.entries == dynacut.last_journal.entries

    def test_journal_entry_round_trip(self):
        entry = JournalEntry("restored", 2, 123456, "note with spaces")
        assert JournalEntry.parse(entry.line()) == entry

    def test_pristine_dir_holds_unmutated_images(self):
        kernel, proc, __ = _staged()
        feature = _profile_set(kernel, proc)
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.TERMINATE
        )
        entry = feature.entry
        pristine = CheckpointImage.load(kernel.fs, dynacut.pristine_dir)
        working = CheckpointImage.load(kernel.fs, dynacut.image_dir)
        original = kernel.binaries[REDIS_BINARY].read_bytes(entry.offset, 1)
        assert pristine.root().read_memory(entry.offset, 1) == original
        assert working.root().read_memory(entry.offset, 1) == b"\xcc"


class TestLintStrictReject:
    """Regression: a strict-lint rejection must not kill the service.

    Before the transactional engine, checkpoint.save() had already
    overwritten the only on-disk copy of the pristine images and the
    tree was already destroyed by the dump, so a strict reject left the
    service dead with no way back.
    """

    def _corrupting_actions(self, kernel):
        # a non-int3 byte in executable code is structural damage the
        # lint flags as DL103
        address = kernel.binaries[REDIS_BINARY].symbol_address("cmd_get")

        def actions(rewriter):
            image, base = rewriter.images_mapping(REDIS_BINARY)[0]
            image.write_memory(base + address, b"\x90")

        return address, actions

    def test_lint_strict_reject_leaves_service_running(self):
        kernel, proc, client = _staged()
        dynacut = DynaCut(kernel, lint_mode="always", lint_strict=True)
        address, actions = self._corrupting_actions(kernel)

        with pytest.raises(CustomizationAborted) as excinfo:
            dynacut.customize(proc.pid, actions)
        assert "dynalint rejected" in str(excinfo.value)

        # the service survived the rejection, unmodified
        proc = dynacut.restored_process(proc.pid)
        assert proc.alive
        assert client.ping()
        assert client.set("k", "v")
        assert client.get("k") == "v"

        # and the live code carries the pristine byte, not the damage
        original = kernel.binaries[REDIS_BINARY].read_bytes(address, 1)
        assert proc.memory.read_raw(address, 1) == original

    def test_reject_restores_pristine_on_disk_images(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel, lint_mode="always", lint_strict=True)
        address, actions = self._corrupting_actions(kernel)
        with pytest.raises(CustomizationAborted):
            dynacut.customize(proc.pid, actions)
        # the working directory holds pristine images again (the
        # rewritten save was rolled back), so a crash-recovery restore
        # from disk would also come up clean
        working = CheckpointImage.load(kernel.fs, dynacut.image_dir)
        original = kernel.binaries[REDIS_BINARY].read_bytes(address, 1)
        assert working.root().read_memory(address, 1) == original
        assert dynacut.last_journal.phase == PHASE_ROLLED_BACK

    def test_reject_report_recorded_as_rolled_back(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel, lint_mode="always", lint_strict=True)
        __, actions = self._corrupting_actions(kernel)
        with pytest.raises(CustomizationAborted) as excinfo:
            dynacut.customize(proc.pid, actions)
        report = excinfo.value.report
        assert report is not None
        assert report.outcome == "rolled-back"
        assert report.rolled_back
        assert dynacut.history[-1] is report


class TestTransientRetry:
    def test_single_transient_fault_retries_then_commits(self):
        kernel, proc, client = _staged()
        dynacut = DynaCut(kernel)
        plan = FaultPlan(seed=7).arm(
            "restore.memory", "transient", on_call=1
        )
        with plan:
            report = dynacut.customize(proc.pid, lambda rw: None)
        assert report.outcome == "committed"
        assert report.attempts == 2
        assert plan.fired == 1
        journal = dynacut.last_journal
        assert PHASE_ROLLED_BACK in journal.phases(attempt=1)
        assert PHASE_RETRYING in journal.phases(attempt=1)
        assert journal.phases(attempt=2)[-1] == PHASE_COMMITTED
        assert client.ping()

    def test_backoff_charged_to_virtual_clock(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel)
        # dump fails before the tree is destroyed: the only extra cost
        # over a clean run is the re-dump and the backoff
        plan = FaultPlan(seed=1).arm(
            "checkpoint.dump_pages", "transient", on_call=1
        )
        with plan:
            dynacut.customize(proc.pid, lambda rw: None)
        journal = dynacut.last_journal
        retrying = [e for e in journal.entries if e.phase == PHASE_RETRYING]
        assert len(retrying) == 1
        assert retrying[0].note == (
            f"backoff={dynacut.cost_model.retry_backoff(1)}ns"
        )

    def test_retry_is_deterministic(self):
        def campaign():
            kernel, proc, __ = _staged()
            dynacut = DynaCut(kernel)
            plan = FaultPlan(seed=42).arm(
                "restore.fds", "transient", probability=0.8, times=2
            )
            with plan:
                dynacut.customize(proc.pid, lambda rw: None)
            return (
                [(r.site, r.call_index, r.kind) for r in plan.log],
                dynacut.last_journal.serialize(),
            )

        assert campaign() == campaign()

    def test_retry_exhaustion_aborts_with_fault_chain(self):
        kernel, proc, client = _staged()
        dynacut = DynaCut(kernel)
        # restore.memory is visited alternately by the attempt and by
        # the rollback: calls 1, 3, 5 are the three attempts
        plan = FaultPlan(seed=0)
        for call in (1, 3, 5):
            plan.arm("restore.memory", "transient", on_call=call)
        with plan:
            with pytest.raises(CustomizationAborted) as excinfo:
                dynacut.customize(proc.pid, lambda rw: None)
        assert isinstance(excinfo.value.__cause__, TransientFault)
        assert excinfo.value.__cause__.site == "restore.memory"
        assert excinfo.value.report.attempts == dynacut.max_attempts
        assert plan.fired == 3
        # the service rolled back and keeps serving
        assert dynacut.restored_process(proc.pid).alive
        assert client.ping()


class TestPermanentFault:
    def test_permanent_fault_rolls_back_first_attempt(self):
        kernel, proc, client = _staged()
        feature = _profile_set(kernel, proc)
        dynacut = DynaCut(kernel)
        # image.save call 3 is the rewritten-image save (1 = the dump's
        # own save, 2 = the pristine save)
        plan = FaultPlan(seed=3).arm("image.save", "permanent", on_call=3)
        with plan:
            with pytest.raises(CustomizationAborted) as excinfo:
                dynacut.disable_feature(
                    proc.pid, feature, policy=TrapPolicy.TERMINATE
                )
        assert excinfo.value.report.attempts == 1
        assert dynacut.last_journal.phase == PHASE_ROLLED_BACK
        # rolled back: the feature was never disabled
        assert dynacut.disabled_features(proc.pid) == []
        assert client.ping()
        assert client.set("still", "works")

    def test_rollback_failed_when_faults_saturate_restore(self):
        kernel, proc, __ = _staged()
        dynacut = DynaCut(kernel)
        plan = FaultPlan(seed=9).arm(
            "restore.memory", "transient", probability=1.0, times=0
        )
        with plan:
            with pytest.raises(RollbackFailed):
                dynacut.customize(proc.pid, lambda rw: None)
        # the one scenario where the service is genuinely down
        survivor = kernel.processes.get(proc.pid)
        assert survivor is None or not survivor.alive


class TestEnableFeatureRecord:
    def test_disabled_record_survives_aborted_reenable(self):
        kernel, proc, client = _staged()
        feature = _profile_set(kernel, proc)
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.REDIRECT,
            redirect_symbol="redis_unknown_cmd",
        )
        assert dynacut.disabled_features(proc.pid) == ["SET"]
        assert client.command("SET k v").startswith("-ERR")

        plan = FaultPlan(seed=5).arm("restore.memory", "permanent", on_call=1)
        with plan:
            with pytest.raises(CustomizationAborted):
                dynacut.enable_feature(proc.pid, feature)
        # the re-enable rolled back: the feature is still disabled and
        # the record survived for the retry
        assert dynacut.disabled_features(proc.pid) == ["SET"]
        assert client.command("SET k v").startswith("-ERR")

        dynacut.enable_feature(proc.pid, feature)
        assert dynacut.disabled_features(proc.pid) == []
        assert client.set("k", "v2")
        assert client.get("k") == "v2"


# ----------------------------------------------------------------------
# DynaShelve: block-granular partial re-enable with decay


def _shelved_staged():
    """A verify-mode ALL removal of SET, ready for shelving."""
    kernel, proc, client = _staged()
    tracer = BlockTracer(kernel, proc).attach()
    for cmd in ("PING", "GET a", "DEL a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "SET", [wanted], [undesired]
    )
    dynacut = DynaCut(kernel)
    dynacut.disable_feature(
        proc.pid, feature, policy=TrapPolicy.VERIFY, mode=BlockMode.ALL
    )
    return kernel, proc, client, feature, dynacut


def _entry_bytes(kernel, dynacut, feature):
    """Entry byte of every feature block in the committed working image."""
    image = CheckpointImage.load(kernel.fs, dynacut.image_dir)
    root = image.root()
    return [root.read_memory(block.offset, 1) for block in feature.blocks]


class TestShelveDecay:
    def test_shelve_restores_only_requested_blocks(self):
        kernel, proc, client, feature, dynacut = _shelved_staged()
        removed = dynacut.disabled_blocks(proc.pid, "SET")
        targets = [block.offset for block in removed[:2]]
        report = dynacut.reenable_blocks(proc.pid, feature, targets)
        assert report is not None and report.outcome == "committed"
        # the shelve session is tagged in the journal
        journal = dynacut.last_journal
        assert journal.op == "shelve"
        assert any("op=shelve" in e.note for e in journal.entries)
        # exactly the requested blocks were restored in the image
        binary = kernel.binaries[REDIS_BINARY]
        image = CheckpointImage.load(kernel.fs, dynacut.image_dir).root()
        for block in removed:
            byte = image.read_memory(block.offset, 1)
            if block.offset in targets:
                assert byte == binary.read_bytes(block.offset, 1)
            else:
                assert byte == b"\xcc"
        # and the bookkeeping agrees
        assert dynacut.shelved_offsets(proc.pid, "SET") == sorted(targets)
        still = {b.offset for b in dynacut.disabled_blocks(proc.pid, "SET")}
        assert still == {b.offset for b in removed} - set(targets)
        assert dynacut.status(proc.pid)["shelved_blocks"] == {"SET": 2}

    def test_reshelve_is_idempotent_no_journal_growth(self):
        kernel, proc, client, feature, dynacut = _shelved_staged()
        targets = [dynacut.disabled_blocks(proc.pid, "SET")[0].offset]
        dynacut.reenable_blocks(proc.pid, feature, targets)
        rewrites = dynacut.status(proc.pid)["rewrites"]
        # everything requested is already shelved: no transaction opens
        assert dynacut.reenable_blocks(proc.pid, feature, targets) is None
        assert dynacut.status(proc.pid)["rewrites"] == rewrites

    def test_unknown_offsets_rejected(self):
        kernel, proc, client, feature, dynacut = _shelved_staged()
        with pytest.raises(RewriteError, match="not part of feature"):
            dynacut.reenable_blocks(proc.pid, feature, [0xDEAD])
        fresh = DynaCut(kernel, image_dir="/tmp/criu/other")
        with pytest.raises(RewriteError, match="not disabled"):
            fresh.reenable_blocks(proc.pid, feature, [feature.entry.offset])

    def test_decay_repatches_cold_blocks_only(self):
        kernel, proc, client, feature, dynacut = _shelved_staged()
        removed = dynacut.disabled_blocks(proc.pid, "SET")
        targets = [block.offset for block in removed[:2]]
        dynacut.reenable_blocks(proc.pid, feature, targets)
        # nothing is cold yet: no transaction, no change
        rewrites = dynacut.status(proc.pid)["rewrites"]
        assert dynacut.decay_shelved(proc.pid, feature, decay_ns=10**12) == []
        assert dynacut.status(proc.pid)["rewrites"] == rewrites
        # advance past the decay window: both blocks re-removed
        kernel.clock_ns += 5
        cold = dynacut.decay_shelved(proc.pid, feature, decay_ns=5)
        assert sorted(block.offset for block in cold) == sorted(targets)
        assert dynacut.last_journal.op == "decay"
        assert dynacut.shelved_offsets(proc.pid, "SET") == []
        image = CheckpointImage.load(kernel.fs, dynacut.image_dir).root()
        for offset in targets:
            assert image.read_memory(offset, 1) == b"\xcc"
        # the disabling session's handler tables survived shelve/decay:
        # a decayed block heals again when traffic returns (verify mode)
        assert client.set("k", "v")
        assert client.get("k") == "v"

    def test_enable_feature_clears_the_shelf(self):
        kernel, proc, client, feature, dynacut = _shelved_staged()
        targets = [dynacut.disabled_blocks(proc.pid, "SET")[0].offset]
        dynacut.reenable_blocks(proc.pid, feature, targets)
        dynacut.enable_feature(proc.pid, feature)
        assert dynacut.shelved_offsets(proc.pid, "SET") == []
        assert dynacut.status(proc.pid)["shelved_blocks"] == {}


class TestShelveConvergence:
    @settings(
        max_examples=5, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(picks=st.lists(st.integers(0, 63), min_size=1, max_size=5))
    def test_shelve_decay_reshelve_converges(self, picks):
        """shelve -> decay -> re-shelve is a fixed cycle.

        For any subset of the removal set: re-shelving an already
        shelved subset opens no transaction (no journal growth), decay
        returns the image to the exact post-disable bytes, and a second
        shelve of the same subset reproduces the exact post-shelve
        bytes — the cycle converges instead of accreting state.
        """
        kernel, proc, client, feature, dynacut = _shelved_staged()
        disabled_image = _entry_bytes(kernel, dynacut, feature)
        removed = dynacut.disabled_blocks(proc.pid, "SET")
        offsets = sorted({removed[i % len(removed)].offset for i in picks})

        report = dynacut.reenable_blocks(proc.pid, feature, offsets)
        assert report is not None and report.outcome == "committed"
        shelved_image = _entry_bytes(kernel, dynacut, feature)
        rewrites = dynacut.status(proc.pid)["rewrites"]

        # re-shelving the shelved subset is a no-op: no journal growth
        assert dynacut.reenable_blocks(proc.pid, feature, offsets) is None
        assert dynacut.status(proc.pid)["rewrites"] == rewrites
        assert _entry_bytes(kernel, dynacut, feature) == shelved_image

        # decay re-removes everything: byte-identical to post-disable
        kernel.clock_ns += 1
        cold = dynacut.decay_shelved(proc.pid, feature, decay_ns=1)
        assert sorted(block.offset for block in cold) == offsets
        assert _entry_bytes(kernel, dynacut, feature) == disabled_image
        assert dynacut.shelved_offsets(proc.pid, "SET") == []

        # a drained shelf decays no further: no journal growth
        rewrites = dynacut.status(proc.pid)["rewrites"]
        assert dynacut.decay_shelved(proc.pid, feature, decay_ns=1) == []
        assert dynacut.status(proc.pid)["rewrites"] == rewrites

        # the second shelve reproduces the first, byte for byte
        report = dynacut.reenable_blocks(proc.pid, feature, offsets)
        assert report is not None and report.outcome == "committed"
        assert _entry_bytes(kernel, dynacut, feature) == shelved_image
        assert dynacut.shelved_offsets(proc.pid, "SET") == offsets
