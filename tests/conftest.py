"""Shared fixtures: built guest images and staged servers.

Binary images are memoized process-wide by ``repro.apps.toolchain``, so
the compile+link cost is paid once per pytest session.
"""

from __future__ import annotations

import pytest

from repro.apps import (
    LIGHTTPD_PORT,
    NGINX_PORT,
    REDIS_PORT,
    libc_image,
    lighttpd_image,
    nginx_image,
    redis_image,
    stage_lighttpd,
    stage_nginx,
    stage_redis,
)
from repro.kernel import Kernel
from repro.workloads import HttpClient, RedisClient


@pytest.fixture(scope="session")
def libc():
    return libc_image()


@pytest.fixture(scope="session")
def redis_binary():
    return redis_image()


@pytest.fixture(scope="session")
def lighttpd_binary():
    return lighttpd_image()


@pytest.fixture(scope="session")
def nginx_binary():
    return nginx_image()


@pytest.fixture()
def kernel():
    return Kernel()


@pytest.fixture()
def redis_server():
    """(kernel, process, client) with miniredis booted to ready."""
    kernel = Kernel()
    proc = stage_redis(kernel)
    return kernel, proc, RedisClient(kernel, REDIS_PORT)


@pytest.fixture()
def lighttpd_server():
    """(kernel, process, client) with minilight booted to ready."""
    kernel = Kernel()
    proc = stage_lighttpd(kernel)
    return kernel, proc, HttpClient(kernel, LIGHTTPD_PORT)


@pytest.fixture()
def nginx_server():
    """(kernel, master, client) with mininginx master+worker up."""
    kernel = Kernel()
    master = stage_nginx(kernel)
    return kernel, master, HttpClient(kernel, NGINX_PORT)
