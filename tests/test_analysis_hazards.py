"""DL50x self-modifying-store lint: rule semantics and seeded guests.

The signal/noise line documented in :mod:`repro.analysis.dataflow.hazards`
is pinned here: finite store targets over executable bytes are definite
(DL501, plus DL503 when they rewrite a live decoded block), unbounded
*code-derived* targets are possible (DL502, warning severity), and plain
unknown pointers — every allocator or peer pointer a server handles —
are never flagged.  A definite hazard also poisons the DynaFlow prover:
``refine_removal_set(prove=True)`` must fall back to the legacy verdicts
because the text its proof reasons over may change at run time.
"""

from __future__ import annotations

from repro.analysis.dataflow import (
    HAZARD_RULES,
    ValueSet,
    analyze_image_flow,
    classify_store,
)
from repro.analysis.lint import LintDiagnostic, LintReport
from repro.analysis.reachability import refine_removal_set
from repro.apps import libc_image, redis_image
from repro.tracing import BlockRecord

from .helpers import build_asm, build_minic

EXEC = [(0x1000, 0x2000)]
BLOCKS = [(0x1000, 0x1040)]


class TestClassifyStore:
    def test_finite_target_in_text_is_definite(self):
        hazards = classify_store(
            0x500, "st64", ValueSet.const(0x1010), EXEC, []
        )
        assert [h.rule for h in hazards] == ["definite"]
        assert hazards[0].code == "DL501"
        assert hazards[0].severity == "error"
        assert hazards[0].target_lo == 0x1010
        assert hazards[0].target_hi == 0x1018    # st64 covers 8 bytes

    def test_definite_store_into_live_block_adds_coherence(self):
        hazards = classify_store(
            0x500, "st8", ValueSet.const(0x1010), EXEC, BLOCKS
        )
        assert [h.rule for h in hazards] == ["definite", "coherence"]
        assert hazards[1].code == "DL503"
        assert "stale" in hazards[1].detail

    def test_definite_store_outside_blocks_has_no_coherence(self):
        hazards = classify_store(
            0x500, "st8", ValueSet.const(0x1800), EXEC, BLOCKS
        )
        assert [h.rule for h in hazards] == ["definite"]

    def test_unbounded_code_tainted_target_is_possible_warning(self):
        target = ValueSet(global_top=True, code=True)
        hazards = classify_store(0x500, "st64", target, EXEC, BLOCKS)
        assert [h.rule for h in hazards] == ["possible"]
        assert hazards[0].code == "DL502"
        assert hazards[0].severity == "warning"

    def test_plain_unknown_pointer_is_clean(self):
        # the taint rule: untainted TOP is every heap/peer pointer a
        # guest ever handles — flagging it would make the lint useless
        hazards = classify_store(0x500, "st64", ValueSet.top(), EXEC, BLOCKS)
        assert hazards == []

    def test_store_below_text_is_clean(self):
        hazards = classify_store(
            0x500, "st64", ValueSet.const(0x900), EXEC, BLOCKS
        )
        assert hazards == []

    def test_pic_requires_taint(self):
        # in a PIC image an absolute constant cannot alias the (base-
        # relative) text ranges; only code-derived addresses count
        untainted = ValueSet.const(0x1010)
        tainted = ValueSet.const(0x1010, code=True)
        assert classify_store(
            0x500, "st64", untainted, EXEC, [], require_taint=True
        ) == []
        assert classify_store(
            0x500, "st64", tainted, EXEC, [], require_taint=True
        ) != []

    def test_rule_table_is_consistent(self):
        assert set(HAZARD_RULES) == {"definite", "possible", "coherence"}
        assert HAZARD_RULES["possible"][1] == "warning"
        assert HAZARD_RULES["definite"][1] == "error"
        assert HAZARD_RULES["coherence"][1] == "error"


SELF_MODIFYING = """
.section text
.global _start
.global patchee
_start:
    lea r1, patchee
    movi r2, 7
    st8 [r1], r2
    call patchee
    hlt
patchee:
    movi r0, 1
    ret
"""


class TestSeededGuests:
    def test_self_modifying_guest_flags_definite_and_coherence(self):
        image = build_asm(SELF_MODIFYING, "smc_guest")
        report = analyze_image_flow(image)
        codes = [h.code for h in report.hazards]
        assert "DL501" in codes
        assert "DL503" in codes        # patchee is a live decoded block
        assert report.definite_hazards

    def test_definite_hazard_forces_prove_fallback(self):
        image = build_asm(SELF_MODIFYING, "smc_fallback")
        records = [BlockRecord(
            image.name, image.symbol_address("patchee"), 4
        )]
        result = refine_removal_set(image, records, prove=True)
        assert result.mode == "prove-fallback"
        assert result.fallback_reason is not None
        # hazards sort coherence-before-definite at one address, so the
        # cited code is whichever DL50x error came first
        assert "DL50" in result.fallback_reason
        assert "self-modifying" in result.fallback_reason
        # fallback still classifies — it just uses the legacy rules
        assert result.counts["provably_dead"] + result.counts[
            "trap_required"
        ] + result.counts["suspect"] == len(records)

    def test_existing_guests_are_clean(self):
        for image in (redis_image(), libc_image()):
            report = analyze_image_flow(image)
            assert report.hazards == [], image.name

    def test_plain_minic_guest_is_clean(self):
        image = build_minic(
            """
            var slab[16];
            func main() {
                store64(slab, 42);
                return load64(slab) - 42;
            }
            """,
            "clean_minic", with_libc=False,
        )
        report = analyze_image_flow(image)
        assert report.hazards == []


class TestSeverityContract:
    def test_warning_only_report_stays_ok(self):
        report = LintReport(diagnostics=[
            LintDiagnostic("DL502", 1, 0x1000, "maybe", severity="warning")
        ])
        assert report.ok
        assert report.warnings and not report.errors

    def test_error_report_fails(self):
        report = LintReport(diagnostics=[
            LintDiagnostic("DL501", 1, 0x1000, "definite")
        ])
        assert not report.ok
