"""Security-evaluation tests: CVEs, BROP, ret2plt (§4.2 behaviours)."""

from __future__ import annotations

import pytest

from repro.apps import (
    NGINX_PORT,
    REDIS_PORT,
    nginx_worker,
    stage_nginx,
    stage_redis,
)
from repro.apps.httpd_nginx import NGINX_BINARY, READY_LINE, WORKER_LINE
from repro.apps.kvstore import REDIS_BINARY
from repro.attacks import (
    PROBES_REQUIRED,
    REDIS_CVES,
    attempt_cve,
    attempt_ret2plt,
    cve_by_id,
    run_brop,
)
from repro.core import DynaCut, TraceDiff, TrapPolicy, init_only_blocks
from repro.kernel import Kernel
from repro.tracing import BlockTracer, merge_traces
from repro.workloads import HttpClient, RedisClient


def _block_command(kernel, proc, command: str, benign_line: str):
    """Profile and disable one miniredis command feature."""
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "SET a 1", "GET a", "DEL a", "EXISTS a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command(benign_line)
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        command, [wanted], [undesired]
    )
    dynacut = DynaCut(kernel)
    dynacut.disable_feature(
        proc.pid, feature, policy=TrapPolicy.REDIRECT,
        redirect_symbol="redis_unknown_cmd",
    )
    return dynacut.restored_process(proc.pid)


class TestCveSpecs:
    def test_five_cves_defined(self):
        assert len(REDIS_CVES) == 5
        assert cve_by_id("CVE-2021-32625").command == "STRALGO"

    def test_unknown_cve_rejected(self):
        with pytest.raises(KeyError):
            cve_by_id("CVE-0000-0000")

    @pytest.mark.parametrize("spec", REDIS_CVES, ids=lambda s: s.cve)
    def test_benign_line_is_harmless(self, spec):
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        reply = client.command(spec.benign_line)
        assert proc.alive
        assert not reply.startswith("-ERR unknown")

    @pytest.mark.parametrize("spec", REDIS_CVES, ids=lambda s: s.cve)
    def test_exploit_succeeds_on_vanilla(self, spec):
        kernel = Kernel()
        proc = stage_redis(kernel)
        outcome = attempt_cve(kernel, proc, REDIS_PORT, spec)
        assert outcome.exploited
        assert not outcome.mitigated

    @pytest.mark.parametrize("spec", REDIS_CVES[:3], ids=lambda s: s.cve)
    def test_dynacut_mitigates(self, spec):
        kernel = Kernel()
        proc = stage_redis(kernel)
        proc = _block_command(kernel, proc, spec.command, spec.benign_line)
        outcome = attempt_cve(kernel, proc, REDIS_PORT, spec)
        assert outcome.mitigated
        assert outcome.server_alive
        # unrelated service is unaffected
        assert RedisClient(kernel, REDIS_PORT).ping()


def _profiled_nginx():
    kernel = Kernel()
    master = stage_nginx(kernel, run_to_ready=False)
    tracer_master = BlockTracer(kernel, master).attach()
    kernel.run_until(
        lambda: READY_LINE in master.stdout_text(), max_instructions=8_000_000
    )
    worker = nginx_worker(kernel, master)
    tracer_worker = BlockTracer(kernel, worker).attach()
    kernel.run_until(
        lambda: WORKER_LINE in worker.stdout_text(), max_instructions=2_000_000
    )
    init = merge_traces([tracer_master.nudge_dump(), tracer_worker.nudge_dump()])
    client = HttpClient(kernel, NGINX_PORT)
    for __ in range(3):
        client.get("/")
    client.head("/")
    serving = merge_traces([tracer_master.finish(), tracer_worker.finish()])
    report = init_only_blocks(init, serving, NGINX_BINARY)
    return kernel, master, report


class TestBrop:
    def test_feasible_on_vanilla(self):
        kernel, master, __ = _profiled_nginx()
        result = run_brop(kernel, master, NGINX_PORT, probes=PROBES_REQUIRED)
        assert result.feasible
        assert result.respawns_observed >= PROBES_REQUIRED - 1
        # service survives the whole brute force (that is the problem)
        assert HttpClient(kernel, NGINX_PORT).get("/").status == 200

    def test_defeated_after_init_removal(self):
        kernel, master, report = _profiled_nginx()
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(
            master.pid, NGINX_BINARY, list(report.init_only), wipe=True
        )
        master = dynacut.restored_process(master.pid)
        # service still works pre-attack
        assert HttpClient(kernel, NGINX_PORT).get("/").status == 200
        result = run_brop(kernel, master, NGINX_PORT, probes=PROBES_REQUIRED)
        assert not result.feasible
        assert result.respawns_observed == 0
        assert result.probes_sent <= 1


class TestRet2Plt:
    def test_fork_pivot_succeeds_on_vanilla(self, nginx_binary):
        kernel, master, __ = _profiled_nginx()
        worker = nginx_worker(kernel, master)
        result = attempt_ret2plt(kernel, worker, nginx_binary, "fork")
        assert result.attack_succeeded

    def test_fork_pivot_fails_after_init_removal(self, nginx_binary):
        kernel, master, report = _profiled_nginx()
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(
            master.pid, NGINX_BINARY, list(report.init_only), wipe=True
        )
        master = dynacut.restored_process(master.pid)
        worker = nginx_worker(kernel, master)
        result = attempt_ret2plt(kernel, worker, nginx_binary, "fork")
        assert not result.attack_succeeded
        assert not result.process_survived   # pivot landed on int3

    def test_unknown_symbol_rejected(self, nginx_binary):
        kernel, master, __ = _profiled_nginx()
        worker = nginx_worker(kernel, master)
        with pytest.raises(KeyError):
            attempt_ret2plt(kernel, worker, nginx_binary, "no_such_import")
