"""Tests for removal-set classification (repro.analysis.reachability)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    BlockClass,
    build_callgraph,
    build_cfg,
    refine_removal_set,
)
from repro.tracing import BlockRecord

from .helpers import build_minic

# `pad` absorbs the _start fall-through edge so feature_work's only
# predecessor is the dispatcher arm that calls it.
DISPATCHER = """
func pad() { return 0; }
func feature_work(x) { return x * 3; }
func other_work(x) { return x + 1; }
func dispatch(cmd) {
    if (cmd == 5) { return feature_work(cmd); }
    return other_work(cmd);
}
func main() { return dispatch(1); }
"""


@pytest.fixture(scope="module")
def dispatcher():
    image = build_minic(DISPATCHER, "dispatcher", with_libc=False)
    cfg = build_cfg(image)
    graph = build_callgraph(image, cfg)
    return image, cfg, graph


def _function_records(image, cfg, graph, name):
    node = graph.functions[name]
    return [
        BlockRecord(image.name, block.start, block.size)
        for block in cfg.blocks
        if node.start <= block.start < node.end
    ]


def _arm_record(image, cfg, graph, callee):
    """The dispatcher block containing the call into ``callee``."""
    site = graph.call_sites_into(callee)[0]
    block = cfg.block_at(site.address)
    return BlockRecord(image.name, block.start, block.size)


class TestFeatureClassification:
    def test_guarded_feature_is_provably_dead(self, dispatcher):
        image, cfg, graph = dispatcher
        arm = _arm_record(image, cfg, graph, "feature_work")
        body = _function_records(image, cfg, graph, "feature_work")
        result = refine_removal_set(image, [arm] + body, entries=[arm])
        assert result.verdict_of(arm) is BlockClass.TRAP_REQUIRED
        for record in body:
            assert result.verdict_of(record) is BlockClass.PROVABLY_DEAD
        assert not result.suspect

    def test_kept_reachable_block_is_suspect(self, dispatcher):
        image, cfg, graph = dispatcher
        arm = _arm_record(image, cfg, graph, "feature_work")
        shared = _function_records(image, cfg, graph, "other_work")
        result = refine_removal_set(image, [arm] + shared, entries=[arm])
        # other_work is called from the kept fall-through arm: removing
        # it would break wanted traffic -> suspect, dropped
        for record in shared:
            assert result.verdict_of(record) is BlockClass.SUSPECT
        assert result.removable == [arm]

    def test_suspicion_propagates(self, dispatcher):
        image, cfg, graph = dispatcher
        arm = _arm_record(image, cfg, graph, "other_work")
        body = _function_records(image, cfg, graph, "other_work")
        # no entry guards other_work's arm; kept code reaches the arm,
        # and through it the whole body: everything is suspect
        result = refine_removal_set(
            image, [arm] + body, entries=[BlockRecord(image.name, 0, 1)]
        )
        assert result.verdict_of(arm) is BlockClass.SUSPECT
        for record in body:
            assert result.verdict_of(record) is BlockClass.SUSPECT

    def test_mid_block_record_needs_trap(self, dispatcher):
        image, cfg, graph = dispatcher
        arm = _arm_record(image, cfg, graph, "feature_work")
        mid = BlockRecord(image.name, arm.offset + 1, arm.size - 1)
        result = refine_removal_set(image, [mid], entries=[arm])
        # kept bytes at the block start fall straight into the record
        assert result.verdict_of(mid) is BlockClass.TRAP_REQUIRED

    def test_record_outside_recovered_code_needs_trap(self, dispatcher):
        image, __, ___ = dispatcher
        stray = BlockRecord(image.name, 0x10, 4)
        result = refine_removal_set(image, [stray])
        assert result.verdict_of(stray) is BlockClass.TRAP_REQUIRED


class TestAutoFrontier:
    def test_frontier_traps_interior_dies(self, dispatcher):
        image, cfg, graph = dispatcher
        arm = _arm_record(image, cfg, graph, "feature_work")
        body = _function_records(image, cfg, graph, "feature_work")
        result = refine_removal_set(image, [arm] + body)   # no entries
        assert result.verdict_of(arm) is BlockClass.TRAP_REQUIRED
        for record in body:
            assert result.verdict_of(record) is BlockClass.PROVABLY_DEAD
        # the auto-frontier mode never produces suspects
        assert not result.suspect

    def test_counts_and_removable(self, dispatcher):
        image, cfg, graph = dispatcher
        arm = _arm_record(image, cfg, graph, "feature_work")
        body = _function_records(image, cfg, graph, "feature_work")
        result = refine_removal_set(image, [arm] + body)
        assert result.counts == {
            "provably_dead": len(body),
            "trap_required": 1,
            "suspect": 0,
        }
        assert set(result.removable) == {arm} | set(body)
        assert result.entry_starts == (arm.offset,)
