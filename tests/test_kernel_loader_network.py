"""Loader (dynamic linking) and network-stack unit tests."""

from __future__ import annotations

import pytest

from repro.apps import libc_image
from repro.binfmt import link_executable, link_shared
from repro.kernel import (
    Kernel,
    LoaderError,
    NetworkError,
    NetworkStack,
    SocketDescriptor,
)
from repro.minic import compile_source

from .helpers import build_minic, run_image


class TestLoader:
    def test_missing_binary_rejected(self):
        kernel = Kernel()
        with pytest.raises(LoaderError):
            kernel.spawn("ghost")

    def test_missing_library_rejected(self):
        kernel = Kernel()
        image = build_minic(
            "extern func strlen;\nfunc main() { return strlen(\"ab\"); }",
            "needs_libc",
        )
        kernel.register_binary(image)  # libc.so NOT registered
        with pytest.raises(LoaderError):
            kernel.spawn("needs_libc")

    def test_got_points_at_libc_function(self):
        image = build_minic(
            'extern func strlen;\nfunc main() { return strlen("abcd"); }',
            "gottest",
        )
        kernel, proc = run_image(image)
        assert proc.exit_code == 4
        got_slot = image.got_entries["strlen"]
        resolved = int.from_bytes(proc.memory.read_raw(got_slot, 8), "little")
        libc_module = next(m for m in proc.modules if m.name == "libc.so")
        expected = libc_module.load_base + libc_image().symbol_address("strlen")
        assert resolved == expected

    def test_libraries_mapped_at_distinct_bases(self):
        # two-level dependency: app -> libmid.so -> libc.so
        mid = link_shared(
            [compile_source(
                "extern func strlen;\nfunc midlen(s) { return strlen(s) * 2; }",
                "mid.o", entry=False,
            )],
            "libmid.so",
            libraries=[libc_image()],
        )
        app_module = compile_source(
            'extern func midlen;\nfunc main() { return midlen("xyz"); }',
            "app.o",
        )
        app = link_executable([app_module], "app", libraries=[mid])
        kernel = Kernel()
        kernel.register_binary(libc_image())
        kernel.register_binary(mid)
        kernel.register_binary(app)
        proc = kernel.spawn("app")
        kernel.run_until(lambda: not proc.alive)
        assert proc.exit_code == 6
        bases = {m.name: m.load_base for m in proc.modules}
        assert len(set(bases.values())) == 3

    def test_module_map_covers_loaded_images(self):
        image = build_minic(
            "extern func strlen;\nfunc main() { return strlen(\"x\"); }",
            "maps",
        )
        kernel, proc = run_image(image)
        assert proc.module_for(image.entry).name == "maps"
        libc_module = next(m for m in proc.modules if m.name == "libc.so")
        start, end = libc_module.text_bounds()
        assert proc.module_for(start).name == "libc.so"

    def test_stack_is_writable_not_executable(self):
        image = build_minic("func main() { return 0; }", "stk", with_libc=False)
        kernel, proc = run_image(image)
        stack = next(v for v in proc.memory.vmas if v.tag == "stack")
        assert stack.writable and not stack.executable


class TestNetworkStack:
    def test_connect_refused_without_listener(self):
        net = NetworkStack()
        with pytest.raises(NetworkError):
            net.connect(1234)

    def test_listen_backlog_and_accept(self):
        net = NetworkStack()
        sock = SocketDescriptor()
        assert net.bind(sock, 80)
        assert net.listen(sock)
        client = net.connect(80)
        server = net.accept(sock)
        assert server is not None
        assert client.peer is server

    def test_data_flow_both_directions(self):
        net = NetworkStack()
        sock = SocketDescriptor()
        net.bind(sock, 80)
        net.listen(sock)
        client = net.connect(80)
        server = net.accept(sock)
        client.send(b"ping")
        assert server.recv(10) == b"ping"
        server.send(b"pong")
        assert client.recv(10) == b"pong"

    def test_send_to_closed_peer_fails(self):
        net = NetworkStack()
        sock = SocketDescriptor()
        net.bind(sock, 80)
        net.listen(sock)
        client = net.connect(80)
        server = net.accept(sock)
        server.close()
        assert client.send(b"x") == -1

    def test_repair_reinstates_buffer_then_new_bytes(self):
        net = NetworkStack()
        sock = SocketDescriptor()
        net.bind(sock, 80)
        net.listen(sock)
        client = net.connect(80)
        server = net.accept(sock)
        client.send(b"OLD")           # arrives pre-checkpoint
        checkpointed = bytes(server.recv_buffer)
        server.recv_buffer.clear()    # dumped into the image
        client.send(b"NEW")           # arrives while frozen
        repaired = net.repair_endpoint(server.conn_id, "b", checkpointed)
        assert bytes(repaired.recv_buffer) == b"OLDNEW"

    def test_repair_gone_connection_raises(self):
        net = NetworkStack()
        with pytest.raises(NetworkError):
            net.repair_endpoint(999, "a", b"")

    def test_gc_drops_fully_closed(self):
        net = NetworkStack()
        sock = SocketDescriptor()
        net.bind(sock, 80)
        net.listen(sock)
        client = net.connect(80)
        server = net.accept(sock)
        client.close()
        server.close()
        net.gc()
        assert client.conn_id not in net.connections

    def test_rebind_listener_restores_backlog(self):
        net = NetworkStack()
        sock = SocketDescriptor()
        net.bind(sock, 80)
        net.listen(sock)
        pending = net.connect(80)      # never accepted
        net.release_port(80)
        listener = net.rebind_listener(80, [pending.conn_id])
        assert listener.has_pending
