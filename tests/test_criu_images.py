"""Serialization and mutation tests for CRIU-style images and CRIT."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.criu import (
    CheckpointImage,
    CoreImage,
    FdEntryImage,
    FilesImage,
    ImageError,
    MmImage,
    PagemapEntry,
    PagemapImage,
    PagesImage,
    ProcessImage,
    RegsImage,
    SigactionEntry,
    VmaEntry,
    crit,
)
from repro.kernel import InMemoryFS, PAGE_SIZE


def _core(pid: int = 7) -> CoreImage:
    return CoreImage(
        pid=pid,
        ppid=1,
        binary="app",
        regs=RegsImage(list(range(16)), 0x401000, True, False),
        sigactions=[SigactionEntry(5, 0x7D0000, 0x7D0100)],
        next_fd=9,
    )


def _process_image(pid: int = 7) -> ProcessImage:
    pages = bytes(range(256)) * 16 * 2      # two pages
    return ProcessImage(
        core=_core(pid),
        mm=MmImage([
            VmaEntry(0x400000, 0x402000, "r-x", "app", 0x400000, "text"),
            VmaEntry(0x500000, 0x501000, "rw-", "", 0, "heap"),
        ]),
        pagemap=PagemapImage([PagemapEntry(0x400000, 2)]),
        pages=PagesImage(pages),
        files=FilesImage([
            FdEntryImage(3, "file", path="/tmp/x", offset=5, flags=2),
            FdEntryImage(4, "socket-listen", port=80, pending_conns=[1, 2]),
            FdEntryImage(5, "socket-conn", conn_id=3, side="b",
                         recv_buffer=b"abc"),
        ]),
    )


class TestImageRoundTrips:
    def test_core(self):
        core = _core()
        restored = CoreImage.from_bytes(core.to_bytes())
        assert restored == core

    def test_mm(self):
        mm = _process_image().mm
        assert MmImage.from_bytes(mm.to_bytes()) == mm

    def test_pagemap(self):
        pagemap = _process_image().pagemap
        assert PagemapImage.from_bytes(pagemap.to_bytes()) == pagemap

    def test_pages(self):
        pages = _process_image().pages
        assert PagesImage.from_bytes(pages.to_bytes()) == pages

    def test_files(self):
        files = _process_image().files
        assert FilesImage.from_bytes(files.to_bytes()) == files

    def test_wrong_magic_rejected(self):
        with pytest.raises(ImageError):
            CoreImage.from_bytes(b"XXXX\x01" + b"\x00" * 64)

    def test_checkpoint_save_load(self):
        fs = InMemoryFS()
        checkpoint = CheckpointImage([_process_image(7), _process_image(8)])
        checkpoint.save(fs, "/tmp/criu/test")
        loaded = CheckpointImage.load(fs, "/tmp/criu/test")
        assert loaded.pids == [7, 8]
        assert loaded.process(7).core == checkpoint.process(7).core
        assert loaded.process(8).pages == checkpoint.process(8).pages

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(1, 4)),
            min_size=1, max_size=5,
        )
    )
    def test_pagemap_total_pages(self, entries):
        pagemap = PagemapImage(
            [PagemapEntry(idx * 0x100000, n) for idx, (__, n) in enumerate(entries)]
        )
        assert pagemap.total_pages == sum(n for __, n in entries)


class TestProcessImageMutation:
    def test_read_write_memory(self):
        image = _process_image()
        image.write_memory(0x400010, b"\xcc\xcc")
        assert image.read_memory(0x400010, 2) == b"\xcc\xcc"
        assert image.read_memory(0x400012, 1) != b"\xcc"

    def test_write_outside_dump_rejected(self):
        image = _process_image()
        with pytest.raises(ImageError):
            image.write_memory(0x500000, b"x")   # heap VMA was not dumped

    def test_write_across_pages(self):
        image = _process_image()
        addr = 0x401000 - 2
        image.write_memory(addr, b"ABCD")
        assert image.read_memory(addr, 4) == b"ABCD"

    def test_add_pages_then_write(self):
        image = _process_image()
        image.add_pages(0x7D000000, b"\x01" * 100)
        assert image.read_memory(0x7D000000, 1) == b"\x01"
        image.write_memory(0x7D000040, b"\xff")
        assert image.read_memory(0x7D000040, 1) == b"\xff"
        # padded to a whole page
        assert image.pagemap.entries[-1].nr_pages == 1

    def test_add_pages_unaligned_rejected(self):
        image = _process_image()
        with pytest.raises(ImageError):
            image.add_pages(0x7D000001, b"x")

    def test_drop_range(self):
        image = _process_image()
        dropped = image.drop_range(0x400000, 0x401000)
        assert dropped == 1
        assert not image.has_dumped(0x400000)
        assert image.has_dumped(0x401000)
        assert len(image.pages.data) == PAGE_SIZE

    def test_total_bytes_tracks_pages(self):
        image = _process_image()
        before = image.total_bytes()
        image.add_pages(0x7D000000, b"\x00" * PAGE_SIZE * 3)
        assert image.total_bytes() >= before + 3 * PAGE_SIZE


class TestCrit:
    @pytest.mark.parametrize("kind", ["core", "mm", "pagemap", "pages", "files"])
    def test_decode_encode_roundtrip(self, kind):
        image = _process_image()
        raw = {
            "core": image.core.to_bytes(),
            "mm": image.mm.to_bytes(),
            "pagemap": image.pagemap.to_bytes(),
            "pages": image.pages.to_bytes(),
            "files": image.files.to_bytes(),
        }[kind]
        decoded = crit.decode(raw)
        assert decoded["kind"] == kind
        assert crit.encode(decoded) == raw

    def test_json_roundtrip(self):
        raw = _core().to_bytes()
        text = crit.decode_to_json(raw)
        assert crit.encode_from_json(text) == raw

    def test_show_mems(self):
        fs = InMemoryFS()
        CheckpointImage([_process_image()]).save(fs, "/tmp/c")
        listing = crit.show_mems(fs, "/tmp/c")
        assert "0x000000400000" in listing
        assert "r-x" in listing
        assert "app" in listing

    def test_show_core(self):
        fs = InMemoryFS()
        CheckpointImage([_process_image()]).save(fs, "/tmp/c2")
        text = crit.show_core(fs, "/tmp/c2", 7)
        assert "pid 7" in text
        assert "sigaction 5" in text

    def test_image_kind_detection(self):
        assert crit.image_kind(_core().to_bytes()) == "core"
        with pytest.raises(ImageError):
            crit.image_kind(b"????")
