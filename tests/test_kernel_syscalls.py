"""Syscall-layer tests: files, sockets, processes, memory, time."""

from __future__ import annotations

from repro.kernel import Kernel, ProcessState, Signal

from .helpers import build_minic, run_image, run_minic


class TestFiles:
    def test_open_read(self):
        image = build_minic(
            r"""
extern func open; extern func read; extern func close; extern func print;
func main() {
    var fd = open("/data/in.txt", 0);
    if (fd < 0) { return 1; }
    var buf[64];
    var n = read(fd, buf, 63);
    close(fd);
    store8(buf + n, 0);
    print(buf);
    return 0;
}
""",
            "reader",
        )
        kernel = Kernel()
        kernel.fs.write_file("/data/in.txt", "file-content")
        __, proc = run_image(image, kernel=kernel)
        assert proc.exit_code == 0
        assert proc.stdout_text() == "file-content"

    def test_open_missing_returns_enoent(self):
        __, proc = run_minic(
            'extern func open;\nfunc main() { return open("/nope", 0) < 0; }'
        )
        assert proc.exit_code == 1

    def test_create_write_unlink(self):
        kernel, proc = run_minic(
            r"""
extern func open; extern func write; extern func close; extern func unlink;
func main() {
    var fd = open("/tmp/out", 0x241);
    write(fd, "xyz", 3);
    close(fd);
    return 0;
}
"""
        )
        assert kernel.fs.read_file("/tmp/out") == b"xyz"

    def test_write_to_stdout(self):
        __, proc = run_minic(
            "func main() { syscall(2, 1, \"out!\", 4); return 0; }"
        )
        assert proc.stdout_text() == "out!"

    def test_bad_fd_errors(self):
        __, proc = run_minic(
            "func main() { return syscall(5, 99) < 0; }"  # close(99)
        )
        assert proc.exit_code == 1


class TestProcesses:
    def test_fork_returns_zero_in_child(self):
        source = r"""
extern func fork; extern func println; extern func waitpid;
func main() {
    var pid = fork();
    if (pid == 0) { println("child"); return 7; }
    var dead = waitpid(pid);
    println("parent");
    if (dead == pid) { return 3; }
    return 1;
}
"""
        kernel, proc = run_minic(source)
        assert proc.exit_code == 3
        child_out = [
            p.stdout_text() for p in kernel.processes.values() if p.pid != proc.pid
        ]
        assert any("child" in out for out in child_out)

    def test_fork_memory_is_copied(self):
        source = r"""
extern func fork; extern func waitpid;
var shared = 1;
func main() {
    var pid = fork();
    if (pid == 0) { shared = 99; return 0; }
    waitpid(pid);
    return shared;     // parent's copy unchanged
}
"""
        __, proc = run_minic(source)
        assert proc.exit_code == 1

    def test_getpid_getppid(self):
        source = r"""
extern func fork; extern func getpid; extern func getppid; extern func waitpid;
func main() {
    var me = getpid();
    var pid = fork();
    if (pid == 0) {
        if (getppid() == me) { return 5; }
        return 1;
    }
    waitpid(pid);
    return 0;
}
"""
        kernel, proc = run_minic(source)
        children = [p for p in kernel.processes.values() if p.ppid == proc.pid]
        assert children and children[0].exit_code == 5

    def test_waitpid_without_children_errors(self):
        __, proc = run_minic(
            "extern func waitpid;\nfunc main() { return waitpid(0) < 0; }"
        )
        assert proc.exit_code == 1

    def test_execve_is_refused_and_logged(self):
        kernel, proc = run_minic(
            'extern func execve;\nfunc main() { return execve("/bin/sh") < 0; }'
        )
        assert proc.exit_code == 1
        assert any(e.kind == "execve" for e in kernel.security_log)

    def test_nanosleep_advances_clock(self):
        kernel, proc = run_minic(
            "extern func sleep_ms;\nfunc main() { sleep_ms(50); return 0; }"
        )
        assert not proc.alive
        assert kernel.clock_ns >= 50_000_000


class TestSocketsEndToEnd:
    def test_echo_server(self):
        source = r"""
extern func socket; extern func bind; extern func listen;
extern func accept; extern func send; extern func recv; extern func println;
func main() {
    var s = socket();
    bind(s, 7777);
    listen(s, 4);
    println("ready");
    var c = accept(s);
    var buf[64];
    var n = recv(c, buf, 63);
    send(c, buf, n);
    return 0;
}
"""
        image = build_minic(source, "echo")
        kernel = Kernel()
        kernel.register_binary(image)
        from repro.apps import libc_image

        kernel.register_binary(libc_image())
        proc = kernel.spawn("echo")
        kernel.run_until(lambda: "ready" in proc.stdout_text())
        sock = kernel.connect(7777)
        assert sock.request(b"ping-pong\n") == b"ping-pong\n"

    def test_bind_conflict(self):
        source = r"""
extern func socket; extern func bind; extern func listen;
func main() {
    var a = socket();
    bind(a, 9999);
    listen(a, 1);
    var b = socket();
    return bind(b, 9999) < 0;
}
"""
        __, proc = run_minic(source)
        assert proc.exit_code == 1

    def test_recv_sees_eof_after_close(self):
        source = r"""
extern func socket; extern func bind; extern func listen;
extern func accept; extern func recv; extern func println;
func main() {
    var s = socket();
    bind(s, 7001);
    listen(s, 1);
    println("ready");
    var c = accept(s);
    var buf[16];
    var n = recv(c, buf, 15);       // gets data
    var m = recv(c, buf, 15);       // gets EOF (0)
    if (n == 2 && m == 0) { return 11; }
    return 1;
}
"""
        image = build_minic(source, "eof")
        kernel = Kernel()
        from repro.apps import libc_image

        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        proc = kernel.spawn("eof")
        kernel.run_until(lambda: "ready" in proc.stdout_text())
        sock = kernel.connect(7001)
        sock.send(b"ab")
        kernel.run(max_instructions=50_000)
        sock.close()
        kernel.run_until(lambda: not proc.alive)
        assert proc.exit_code == 11


class TestMemorySyscalls:
    def test_mmap_munmap(self):
        __, proc = run_minic(
            r"""
extern func mmap; extern func munmap;
func main() {
    var p = mmap(0, 8192, 3);
    if (p == 0) { return 1; }
    store64(p + 4096, 77);
    var v = load64(p + 4096);
    munmap(p, 8192);
    return v;
}
"""
        )
        assert proc.exit_code == 77

    def test_access_after_munmap_faults(self):
        __, proc = run_minic(
            r"""
extern func mmap; extern func munmap;
func main() {
    var p = mmap(0, 4096, 3);
    munmap(p, 4096);
    return load64(p);
}
"""
        )
        assert proc.term_signal is Signal.SIGSEGV

    def test_mprotect_write_protection(self):
        __, proc = run_minic(
            r"""
extern func mmap; extern func mprotect;
func main() {
    var p = mmap(0, 4096, 3);
    store8(p, 1);
    mprotect(p, 4096, 1);    // read-only
    store8(p, 2);            // faults
    return 0;
}
"""
        )
        assert proc.term_signal is Signal.SIGSEGV

    def test_malloc_grows_heap(self):
        __, proc = run_minic(
            r"""
extern func malloc;
func main() {
    var total = 0;
    var i = 0;
    while (i < 8) {
        var p = malloc(100000);
        if (p == 0) { return 1; }
        store8(p, i);
        total = total + load8(p);
        i = i + 1;
    }
    return total;
}
"""
        )
        assert proc.exit_code == sum(range(8))


class TestScheduling:
    def test_two_processes_interleave(self):
        image = build_minic(
            "extern func print_num;\n"
            "func main(argc, argv) { var i = 0; while (i < 3) "
            "{ print_num(i); i = i + 1; } return 0; }",
            "counter",
        )
        kernel = Kernel()
        from repro.apps import libc_image

        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        a = kernel.spawn("counter")
        b = kernel.spawn("counter")
        kernel.run_until(lambda: not a.alive and not b.alive)
        assert a.stdout_text() == b.stdout_text() == "012"

    def test_clock_deadline_fast_forward(self):
        kernel, proc = run_minic(
            "extern func sleep_ms;\nextern func clock_ms;\n"
            "func main() { var t0 = clock_ms(); sleep_ms(1000); "
            "return clock_ms() - t0 >= 1000; }"
        )
        assert proc.exit_code == 1

    def test_frozen_process_does_not_run(self):
        image = build_minic(
            "func main() { var i = 0; while (1) { i = i + 1; } return 0; }",
            "spin",
        )
        kernel = Kernel()
        from repro.apps import libc_image

        kernel.register_binary(libc_image())
        kernel.register_binary(image)
        proc = kernel.spawn("spin")
        kernel.run(max_instructions=1_000)
        kernel.freeze(proc.pid)
        before = proc.instructions_retired
        kernel.run(max_instructions=1_000)
        assert proc.instructions_retired == before
        kernel.thaw(proc.pid)
        kernel.run(max_instructions=1_000)
        assert proc.instructions_retired > before
        assert proc.state is ProcessState.RUNNABLE
