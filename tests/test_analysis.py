"""Tests for static CFG recovery and PLT analysis."""

from __future__ import annotations

from repro.analysis import (
    build_cfg,
    executed_plt_entries,
    plt_entries_in_blocks,
    plt_entry_at,
    total_basic_blocks,
)
from repro.binfmt import PLT_STUB_SIZE
from repro.kernel import Kernel
from repro.tracing import BlockRecord, BlockTracer

from .helpers import build_minic


class TestCfg:
    def test_straight_line_is_few_blocks(self):
        image = build_minic(
            "func main() { return 3; }", "straight", with_libc=False
        )
        cfg = build_cfg(image)
        assert cfg.block_count >= 2  # _start shim + main

    def test_branches_split_blocks(self):
        flat = build_minic("func main() { return 1; }", "flat", with_libc=False)
        branchy = build_minic(
            "func main(argc, argv) { if (argc > 1) { return 1; } "
            "if (argc > 2) { return 2; } return 3; }",
            "branchy",
            with_libc=False,
        )
        assert build_cfg(branchy).block_count > build_cfg(flat).block_count

    def test_blocks_do_not_overlap(self):
        image = build_minic(
            "func f(x) { if (x) { return 1; } return 2; }\n"
            "func main() { return f(0) + f(1); }",
            "olap",
            with_libc=False,
        )
        cfg = build_cfg(image)
        blocks = sorted(cfg.blocks)
        for a, b in zip(blocks, blocks[1:]):
            assert a.end <= b.start

    def test_every_executed_block_is_a_static_leader(self):
        image = build_minic(
            "func fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n"
            "func main() { return fact(6) % 251; }",
            "factorial",
            with_libc=False,
        )
        kernel = Kernel()
        kernel.register_binary(image)
        proc = kernel.spawn("factorial")
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run_until(lambda: not proc.alive)
        trace = tracer.finish()
        leaders = build_cfg(image).block_starts()
        for block in trace.module_blocks("factorial"):
            assert block.offset in leaders, hex(block.offset)

    def test_unreached_functions_still_counted(self):
        image = build_minic(
            "func dead() { return 9; }\nfunc main() { return 1; }",
            "withdead",
            with_libc=False,
        )
        cfg = build_cfg(image)
        dead_addr = image.symbol_address("dead")
        assert cfg.block_at(dead_addr) is not None

    def test_edges_present_for_conditionals(self):
        image = build_minic(
            "func main(argc, argv) { if (argc) { return 1; } return 0; }",
            "edges",
            with_libc=False,
        )
        cfg = build_cfg(image)
        # at least one block has two successors (taken + fallthrough)
        assert any(len(succ) == 2 for succ in cfg.edges.values())

    def test_total_basic_blocks_helper(self):
        image = build_minic("func main() { return 0; }", "tb", with_libc=False)
        assert total_basic_blocks(image) == build_cfg(image).block_count

    def test_plt_stubs_are_blocks(self, redis_binary):
        cfg = build_cfg(redis_binary)
        starts = cfg.block_starts()
        for name, stub in redis_binary.plt_entries.items():
            assert stub in starts, f"plt stub for {name} not a block"


class TestPltAnalysis:
    def test_plt_entry_at(self, redis_binary):
        name, stub = next(iter(redis_binary.plt_entries.items()))
        assert plt_entry_at(redis_binary, stub) == name
        assert plt_entry_at(redis_binary, stub + PLT_STUB_SIZE - 1) == name

    def test_plt_entry_at_miss(self, redis_binary):
        assert plt_entry_at(redis_binary, 0x1) is None

    def test_blocks_map_to_entries(self, redis_binary):
        name, stub = next(iter(redis_binary.plt_entries.items()))
        blocks = [BlockRecord(redis_binary.name, stub, PLT_STUB_SIZE)]
        assert name in plt_entries_in_blocks(redis_binary, blocks)

    def test_executed_plt_entries_from_trace(self, redis_server, redis_binary):
        kernel, proc, client = redis_server
        tracer = BlockTracer(kernel, proc).attach()
        client.ping()
        trace = tracer.finish()
        executed = executed_plt_entries(redis_binary, trace)
        # PING replies through send -> the send PLT entry must be hot
        assert "send" in executed
        assert "recv" in executed
