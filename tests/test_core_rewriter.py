"""Tests for the image rewriter: patching, unmapping, library injection."""

from __future__ import annotations

import pytest

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.core import build_handler_library
from repro.core.rewriter import ImageRewriter, RewriteError
from repro.core.sighandler import (
    HANDLER_SYMBOL,
    POLICY_TERMINATE,
    RESTORER_SYMBOL,
)
from repro.criu import checkpoint_tree, restore_tree
from repro.kernel import Kernel, Signal
from repro.tracing import BlockRecord
from repro.workloads import RedisClient


@pytest.fixture()
def staged():
    kernel = Kernel()
    proc = stage_redis(kernel)
    checkpoint = checkpoint_tree(kernel, proc.pid)
    rewriter = ImageRewriter(kernel, checkpoint)
    return kernel, proc.pid, checkpoint, rewriter


def _some_text_block(kernel) -> BlockRecord:
    binary = kernel.binaries[REDIS_BINARY]
    entry = binary.symbol_address("cmd_set")
    return BlockRecord(REDIS_BINARY, entry, 24)


class TestPatching:
    def test_block_entry_int3(self, staged):
        kernel, pid, checkpoint, rewriter = staged
        block = _some_text_block(kernel)
        patched = rewriter.block_entry_int3(REDIS_BINARY, [block])
        assert patched == 1
        image = checkpoint.processes[0]
        assert image.read_memory(block.offset, 1) == b"\xcc"
        assert image.read_memory(block.offset + 1, 1) != b"\xcc"

    def test_wipe_blocks(self, staged):
        kernel, pid, checkpoint, rewriter = staged
        block = _some_text_block(kernel)
        wiped = rewriter.wipe_blocks(REDIS_BINARY, [block])
        assert wiped == block.size
        image = checkpoint.processes[0]
        assert image.read_memory(block.offset, block.size) == b"\xcc" * block.size

    def test_restore_blocks_is_inverse(self, staged):
        kernel, pid, checkpoint, rewriter = staged
        block = _some_text_block(kernel)
        image = checkpoint.processes[0]
        original = image.read_memory(block.offset, block.size)
        rewriter.wipe_blocks(REDIS_BINARY, [block])
        rewriter.restore_blocks(REDIS_BINARY, [block])
        assert image.read_memory(block.offset, block.size) == original

    def test_patch_unknown_module_rejected(self, staged):
        __, __, __, rewriter = staged
        with pytest.raises(RewriteError):
            rewriter.block_entry_int3("ghost", [BlockRecord("ghost", 0, 4)])

    def test_patch_without_exec_dump_rejected(self):
        kernel = Kernel()
        proc = stage_redis(kernel)
        checkpoint = checkpoint_tree(kernel, proc.pid, dump_exec_pages=False)
        rewriter = ImageRewriter(kernel, checkpoint)
        with pytest.raises(RewriteError) as excinfo:
            rewriter.block_entry_int3(REDIS_BINARY, [_some_text_block(kernel)])
        assert "dump_exec_pages" in str(excinfo.value)

    def test_stats_and_clock_accounting(self, staged):
        kernel, __, __, rewriter = staged
        before = kernel.clock_ns
        rewriter.block_entry_int3(REDIS_BINARY, [_some_text_block(kernel)])
        assert rewriter.stats.blocks_patched == 1
        assert rewriter.stats.patch_ns > 0
        assert kernel.clock_ns == before + rewriter.stats.patch_ns


class TestUnmap:
    def test_unmap_drops_pages_and_vma(self, staged):
        kernel, pid, checkpoint, rewriter = staged
        image = checkpoint.processes[0]
        text_vma = next(v for v in image.mm.vmas if v.tag == "text")
        start_offset = text_vma.start  # module base is 0 for executables
        dropped = rewriter.unmap_module_range(REDIS_BINARY, start_offset, 4096)
        assert dropped == 1
        assert image.mm.vma_at(text_vma.start) is None
        assert not image.has_dumped(text_vma.start)

    def test_unmapped_code_faults_after_restore(self, staged):
        kernel, pid, checkpoint, rewriter = staged
        binary = kernel.binaries[REDIS_BINARY]
        text = binary.segment("text")
        rewriter.unmap_module_range(REDIS_BINARY, text.vaddr, 4096)
        (proc,) = restore_tree(kernel, checkpoint)
        # ping drives execution back through the unmapped page eventually;
        # at minimum the process must die with SIGSEGV when it gets there
        client = RedisClient(kernel, REDIS_PORT)
        try:
            client.command("PING")
        except Exception:
            pass
        kernel.run(max_instructions=200_000)
        assert not proc.alive
        assert proc.term_signal is Signal.SIGSEGV

    def test_unaligned_unmap_rejected(self, staged):
        __, __, __, rewriter = staged
        with pytest.raises(RewriteError):
            rewriter.unmap_module_range(REDIS_BINARY, 0x400001, 4096)


class TestLibraryInjection:
    def test_inject_adds_vmas_and_pages(self, staged):
        kernel, pid, checkpoint, rewriter = staged
        library = build_handler_library(kernel.binaries["libc.so"])
        image = checkpoint.processes[0]
        vmas_before = len(image.mm.vmas)
        base = rewriter.inject_library(image, library)
        assert base % 4096 == 0
        assert len(image.mm.vmas) > vmas_before
        injected = [v for v in image.mm.vmas if v.tag.startswith("dynacut:")]
        assert {v.tag.split(":")[1] for v in injected} >= {"text", "data"}
        # code bytes of the handler are present in the image
        handler = base + library.symbol_address(HANDLER_SYMBOL)
        assert image.read_memory(handler, 1) != b"\x00"

    def test_injection_base_avoids_existing_vmas(self, staged):
        kernel, __, checkpoint, rewriter = staged
        library = build_handler_library(kernel.binaries["libc.so"])
        image = checkpoint.processes[0]
        base = rewriter.inject_library(image, library)
        spans = [(v.start, v.end) for v in image.mm.vmas]
        for start, end in spans:
            overlapping = [
                (s, e) for s, e in spans if s < end and start < e and (s, e) != (start, end)
            ]
            assert not overlapping

    def test_install_trap_handler_sets_sigaction(self, staged):
        kernel, pid, checkpoint, rewriter = staged
        placements = rewriter.install_trap_handler(POLICY_TERMINATE)
        (placement,) = placements
        image = checkpoint.processes[0]
        library = build_handler_library(kernel.binaries["libc.so"])
        entry = next(
            e for e in image.core.sigactions if e.signal == int(Signal.SIGTRAP)
        )
        assert entry.handler == placement.base + library.symbol_address(
            HANDLER_SYMBOL
        )
        assert entry.restorer == placement.base + library.symbol_address(
            RESTORER_SYMBOL
        )

    def test_reinstall_reuses_existing_library(self, staged):
        kernel, pid, checkpoint, rewriter = staged
        (first,) = rewriter.install_trap_handler(POLICY_TERMINATE)
        vmas_after_first = len(checkpoint.processes[0].mm.vmas)
        (second,) = rewriter.install_trap_handler(POLICY_TERMINATE)
        assert second.base == first.base
        assert len(checkpoint.processes[0].mm.vmas) == vmas_after_first

    def test_redirect_capacity_enforced(self, staged):
        __, __, __, rewriter = staged
        too_many = [(i, i) for i in range(100)]
        with pytest.raises(RewriteError):
            rewriter.install_trap_handler(1, redirect_entries=too_many)

    def test_injected_library_works_after_restore(self, staged):
        """End to end: terminate-policy handler fires on an int3."""
        kernel, pid, checkpoint, rewriter = staged
        binary = kernel.binaries[REDIS_BINARY]
        block = BlockRecord(REDIS_BINARY, binary.symbol_address("cmd_set"), 1)
        rewriter.block_entry_int3(REDIS_BINARY, [block])
        rewriter.install_trap_handler(POLICY_TERMINATE)
        (proc,) = restore_tree(kernel, checkpoint)
        sock = kernel.connect(REDIS_PORT)
        sock.send("SET a 1\n")
        kernel.run_until(lambda: not proc.alive, max_instructions=2_000_000)
        assert not proc.alive
        # the handler called exit(139): a clean exit, not a SIGTRAP kill
        assert proc.term_signal is None
        assert proc.exit_code == 139
