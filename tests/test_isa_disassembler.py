"""Tests for linear-sweep disassembly helpers."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa import (
    SPEC_BY_MNEMONIC,
    disassemble_one,
    disassemble_range,
    encode_fields,
    format_listing,
)


def _enc(mnemonic, *ops):
    return encode_fields(SPEC_BY_MNEMONIC[mnemonic], tuple(ops))


class TestDisassembleOne:
    def test_address_and_length(self):
        data = _enc("movi", 1, 42)
        decoded = disassemble_one(data, 0x1000, base=0x1000)
        assert decoded.address == 0x1000
        assert decoded.end == 0x1000 + 10
        assert decoded.mnemonic == "movi"

    def test_branch_target_resolution(self):
        # jmp +6 at 0x2000: target = 0x2000 + 5 + 6
        data = _enc("jmp", 6)
        decoded = disassemble_one(data, 0x2000, base=0x2000)
        assert decoded.branch_target() == 0x2000 + 5 + 6
        assert decoded.is_terminator()
        assert not decoded.is_conditional()

    def test_conditional_flags(self):
        data = _enc("jne", -4)
        decoded = disassemble_one(data, 0, base=0)
        assert decoded.is_conditional()
        assert decoded.branch_target() == 5 - 4

    def test_indirect_has_no_target(self):
        data = _enc("jmpr", 3)
        decoded = disassemble_one(data, 0, base=0)
        assert decoded.is_terminator()
        assert decoded.branch_target() is None

    def test_lea_target(self):
        data = _enc("lea", 2, 0x40)
        decoded = disassemble_one(data, 0x100, base=0x100)
        assert decoded.lea_target() == 0x100 + 6 + 0x40
        assert disassemble_one(_enc("nop"), 0, base=0).lea_target() is None


class TestDisassembleRange:
    def test_full_range_decodes(self):
        data = _enc("movi", 0, 1) + _enc("addi", 0, 2) + _enc("ret")
        instructions, stop = disassemble_range(data, 0, len(data), base=0)
        assert [i.mnemonic for i in instructions] == ["movi", "addi", "ret"]
        assert stop == len(data)

    def test_stops_at_garbage(self):
        data = _enc("nop") + b"\xff\xff" + _enc("ret")
        instructions, stop = disassemble_range(data, 0, len(data), base=0)
        assert [i.mnemonic for i in instructions] == ["nop"]
        assert stop == 1

    def test_respects_end_boundary(self):
        data = _enc("movi", 0, 1) + _enc("movi", 1, 2)
        instructions, stop = disassemble_range(data, 0, 12, base=0)
        # the second movi (10 bytes) would cross the 12-byte boundary
        assert len(instructions) == 1
        assert stop == 10

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["nop", "ret", "int3", "syscall"]),
                    min_size=1, max_size=30))
    def test_one_byte_streams_decode_completely(self, mnemonics):
        data = b"".join(_enc(m) for m in mnemonics)
        instructions, stop = disassemble_range(data, 0, len(data), base=0)
        assert [i.mnemonic for i in instructions] == mnemonics
        assert stop == len(data)

    def test_format_listing(self):
        data = _enc("nop") + _enc("ret")
        instructions, __ = disassemble_range(data, 0x400000, 0x400002,
                                             base=0x400000)
        text = format_listing(instructions)
        assert "0x00400000: nop" in text
        assert "ret" in text
