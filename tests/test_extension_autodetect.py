"""§5 extension: automatic init/serving transition detection."""

from __future__ import annotations

import pytest

from repro.apps import (
    LIGHTTPD_PORT,
    REDIS_PORT,
    nginx_worker,
    stage_lighttpd,
    stage_nginx,
    stage_redis,
)
from repro.apps.httpd_lighttpd import LIGHTTPD_BINARY
from repro.apps.kvstore import READY_LINE, REDIS_BINARY
from repro.core import DynaCut, init_only_blocks
from repro.core.autodetect import AutoNudgeTracer, autodetect_init_phase
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import HttpClient, RedisClient

from .helpers import build_minic, run_image


class TestAutoDetection:
    def test_detects_redis_transition_without_human(self):
        kernel = Kernel()
        proc = stage_redis(kernel, run_to_ready=False)
        tracer, init_trace = autodetect_init_phase(kernel, proc)
        # detection happens exactly at the ready point the human would
        # have used: after the banner, before any client is served
        assert READY_LINE in proc.stdout_text()
        assert len(init_trace.module_blocks(REDIS_BINARY)) > 50
        # the serving trace is fresh
        client = RedisClient(kernel, REDIS_PORT)
        client.ping()
        serving = tracer.finish()
        assert serving.module_blocks(REDIS_BINARY)
        assert not (set(serving.order[:1]) & init_trace.blocks)

    def test_matches_manual_ready_line_split(self):
        """Automatic and manual profiling agree on the init-only set."""
        def workload(kernel, proc):
            client = RedisClient(kernel, REDIS_PORT)
            for cmd in ("PING", "SET a 1", "GET a", "DEL a"):
                client.command(cmd)

        # manual: nudge at the observed ready line
        kernel = Kernel()
        proc = stage_redis(kernel, run_to_ready=False)
        manual = BlockTracer(kernel, proc).attach()
        kernel.run_until(lambda: READY_LINE in proc.stdout_text())
        manual_init = manual.nudge_dump()
        workload(kernel, proc)
        manual_serving = manual.finish()
        manual_report = init_only_blocks(manual_init, manual_serving,
                                         REDIS_BINARY)

        # automatic: listen→poll detection
        kernel = Kernel()
        proc = stage_redis(kernel, run_to_ready=False)
        tracer, auto_init = autodetect_init_phase(kernel, proc)
        workload(kernel, proc)
        auto_serving = tracer.finish()
        auto_report = init_only_blocks(auto_init, auto_serving, REDIS_BINARY)

        manual_bytes = {
            o for b in manual_report.init_only
            for o in range(b.offset, b.offset + b.size)
        }
        auto_bytes = {
            o for b in auto_report.init_only
            for o in range(b.offset, b.offset + b.size)
        }
        # near-identical removable sets (>90% overlap both ways)
        overlap = len(manual_bytes & auto_bytes)
        assert overlap > 0.9 * len(manual_bytes)
        assert overlap > 0.9 * len(auto_bytes)

    def test_lighttpd_poll_transition(self):
        kernel = Kernel()
        proc = stage_lighttpd(kernel, run_to_ready=False)
        tracer, init_trace = autodetect_init_phase(kernel, proc)
        assert init_trace.module_blocks(LIGHTTPD_BINARY)
        client = HttpClient(kernel, LIGHTTPD_PORT)
        assert client.get("/").status == 200
        tracer.detach()

    def test_nginx_worker_accept_transition(self):
        kernel = Kernel()
        master = stage_nginx(kernel)
        worker = nginx_worker(kernel, master)
        # the worker is already past its transition; respawn a fresh
        # scenario instead: attach to the worker and hit it — accept was
        # already issued, so attach a tracer on a fresh kernel
        kernel2 = Kernel()
        master2 = stage_nginx(kernel2, run_to_ready=False)
        tracer = None
        # attach to the worker as soon as it exists
        def worker_exists():
            return any(
                p.ppid == master2.pid and p.alive
                for p in kernel2.processes.values()
            )
        kernel2.run_until(worker_exists, max_instructions=8_000_000)
        worker2 = nginx_worker(kernel2, master2)
        tracer = AutoNudgeTracer(kernel2, worker2).attach()
        kernel2.run_until(lambda: tracer.transitioned,
                          max_instructions=8_000_000)
        assert tracer.transitioned
        tracer.detach()

    def test_end_to_end_automatic_removal(self):
        """Fully automatic: detect, profile, remove, keep serving."""
        kernel = Kernel()
        proc = stage_redis(kernel, run_to_ready=False)
        tracer, init_trace = autodetect_init_phase(kernel, proc)
        client = RedisClient(kernel, REDIS_PORT)
        for cmd in ("PING", "SET a 1", "GET a", "DEL a", "DBSIZE"):
            client.command(cmd)
        serving = tracer.finish()
        report = init_only_blocks(init_trace, serving, REDIS_BINARY)
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(proc.pid, REDIS_BINARY,
                                 list(report.init_only), wipe=True)
        proc = dynacut.restored_process(proc.pid)
        assert client.ping()
        assert client.set("auto", "matic")
        assert client.get("auto") == "matic"

    def test_non_server_raises(self):
        image = build_minic("func main() { return 7; }", "plain",
                            with_libc=False)
        kernel = Kernel()
        kernel.register_binary(image)
        proc = kernel.spawn("plain")
        with pytest.raises(RuntimeError):
            autodetect_init_phase(kernel, proc, max_instructions=10_000)
