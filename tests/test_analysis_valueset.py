"""Value-set analysis: one test per indirect-branch value source.

VM64 has two indirect transfers (``jmpr``/``callr``); what varies is
how the target value reaches the register.  Each path the resolver
claims to understand gets a guest here: immediate ``movi``, ``lea``,
a function-pointer word in initialized data, a stack-slot round trip,
a two-path join, the PLT/GOT import tail, and — the deliberate failure
case — a pointer clobbered by call havoc, which must stay *unresolved*
but bounded by the address-taken set.
"""

from __future__ import annotations

from repro.analysis.dataflow import analyze_image_flow

from .helpers import build_asm, build_minic


def _site(report, mnemonic):
    sites = [s for s in report.sites if s.mnemonic == mnemonic]
    assert sites, f"no {mnemonic} site recovered"
    return sites[0]


def _analyze(source: str, name: str):
    image = build_asm(source, name)
    return image, analyze_image_flow(image)


class TestResolvedEncodings:
    def test_movi_immediate_jmpr(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global target
            _start:
                movi r1, @target
                jmpr r1
            target:
                hlt
            """,
            "vsa_movi_jmp",
        )
        site = _site(report, "jmpr")
        assert site.resolved and not site.external
        assert site.targets == (image.symbol_address("target"),)

    def test_movi_immediate_callr(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global fn
            _start:
                movi r2, @fn
                callr r2
                hlt
            fn:
                ret
            """,
            "vsa_movi_call",
        )
        site = _site(report, "callr")
        assert site.is_call and site.resolved
        assert site.targets == (image.symbol_address("fn"),)

    def test_lea_callr(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global fn
            _start:
                lea r1, fn
                callr r1
                hlt
            fn:
                ret
            """,
            "vsa_lea_call",
        )
        site = _site(report, "callr")
        assert site.resolved
        assert site.targets == (image.symbol_address("fn"),)
        # a lea of a text address marks it address-taken
        assert image.symbol_address("fn") in report.address_taken

    def test_function_pointer_word_in_rodata(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global fn
            _start:
                movi r1, @table
                ld64 r2, [r1]
                callr r2
                hlt
            fn:
                ret
            .section rodata
            .global table
            table: .quad @fn
            """,
            "vsa_ro_word",
        )
        site = _site(report, "callr")
        assert site.resolved
        assert site.targets == (image.symbol_address("fn"),)
        # the data word is also an address-taken source
        assert image.symbol_address("fn") in report.address_taken

    def test_writable_pointer_word_stays_unresolved(self):
        # same shape, but the table is in writable data: its content can
        # change at run time, so resolving through it would be unsound —
        # the site must fall back to the address-taken bound
        image, report = _analyze(
            """
            .section text
            .global _start
            .global fn
            _start:
                movi r1, @table
                ld64 r2, [r1]
                callr r2
                hlt
            fn:
                ret
            .section data
            .global table
            table: .quad @fn
            """,
            "vsa_rw_word",
        )
        site = _site(report, "callr")
        assert not site.resolved
        assert image.symbol_address("fn") in report.address_taken

    def test_stack_slot_round_trip(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global fn
            _start:
                lea r1, fn
                st64 [sp-16], r1
                movi r1, 0
                ld64 r3, [sp-16]
                callr r3
                hlt
            fn:
                ret
            """,
            "vsa_stack_slot",
        )
        site = _site(report, "callr")
        assert site.resolved
        assert site.targets == (image.symbol_address("fn"),)

    def test_two_path_join_resolves_both_targets(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global alpha
            .global beta
            _start:
                cmpi r6, 0
                je _Lother
                movi r1, @alpha
                jmp _Lgo
            _Lother:
                movi r1, @beta
            _Lgo:
                jmpr r1
            alpha:
                hlt
            beta:
                hlt
            """,
            "vsa_join",
        )
        site = _site(report, "jmpr")
        assert site.resolved
        assert site.targets == tuple(sorted(
            (image.symbol_address("alpha"), image.symbol_address("beta"))
        ))

    def test_plt_tail_resolves_external(self):
        # the import stub loads a GOT word (dynamic relocation site) and
        # jumps through it: resolved-external, never "unknown"
        image = build_minic(
            'extern func strlen;\nfunc main() { return strlen("hi"); }',
            "vsa_plt",
        )
        report = analyze_image_flow(image)
        externals = [s for s in report.sites if s.external]
        assert externals
        assert all(s.resolved and s.mnemonic == "jmpr" for s in externals)
        assert not report.unresolved_sites()


class TestUnresolvedEncodings:
    def test_call_havoc_clobbers_pointer(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global fn
            .global noop
            _start:
                lea r1, fn
                call noop
                jmpr r1
            noop:
                ret
            fn:
                hlt
            """,
            "vsa_havoc",
        )
        # r1 is caller-saved: after the call its value is unknown, so
        # the site must not be (unsoundly) resolved to fn...
        site = _site(report, "jmpr")
        assert not site.resolved
        assert site in report.unresolved_sites()
        # ...but the proof stays bounded: the lea put fn in the
        # address-taken set, so prove mode still has a target universe
        assert image.symbol_address("fn") in report.address_taken

    def test_callee_saved_pointer_survives_call(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global fn
            .global noop
            _start:
                lea r7, fn
                call noop
                jmpr r7
            noop:
                ret
            fn:
                hlt
            """,
            "vsa_callee_saved",
        )
        # r7 is callee-saved: the call must NOT havoc it
        site = _site(report, "jmpr")
        assert site.resolved
        assert site.targets == (image.symbol_address("fn"),)

    def test_resolved_targets_mapping(self):
        image, report = _analyze(
            """
            .section text
            .global _start
            .global fn
            _start:
                movi r1, @fn
                callr r1
                hlt
            fn:
                ret
            """,
            "vsa_mapping",
        )
        mapping = report.resolved_targets()
        assert list(mapping.values()) == [(image.symbol_address("fn"),)]
