"""Tests for PLT-stub analysis (repro.analysis.plt)."""

from __future__ import annotations

from repro.analysis import (
    executed_plt_entries,
    plt_entries_in_blocks,
    plt_entry_at,
)
from repro.apps import REDIS_PORT, stage_redis
from repro.binfmt.linker import PLT_STUB_SIZE
from repro.core import DynaCut
from repro.kernel import Kernel
from repro.tracing import BlockRecord, BlockTracer
from repro.workloads import RedisClient


class TestStubDiscovery:
    def test_every_import_has_a_stub(self, redis_binary):
        assert redis_binary.plt_entries
        assert "libc.so" in redis_binary.needed
        # one stub per imported function, packed at stride PLT_STUB_SIZE
        stubs = sorted(redis_binary.plt_entries.values())
        for prev, nxt in zip(stubs, stubs[1:]):
            assert nxt - prev == PLT_STUB_SIZE

    def test_stubs_live_in_plt_segment(self, redis_binary):
        seg = next(s for s in redis_binary.segments if s.name == "plt")
        for stub in redis_binary.plt_entries.values():
            assert seg.vaddr <= stub
            assert stub + PLT_STUB_SIZE <= seg.vaddr + len(seg.data)

    def test_plt_entry_at_covers_whole_stub(self, redis_binary):
        for name, stub in redis_binary.plt_entries.items():
            for offset in (stub, stub + 1, stub + PLT_STUB_SIZE - 1):
                assert plt_entry_at(redis_binary, offset) == name
            assert plt_entry_at(redis_binary, stub - 1) != name
            assert plt_entry_at(redis_binary, stub + PLT_STUB_SIZE) != name

    def test_plt_entry_at_outside_plt(self, redis_binary):
        text = next(s for s in redis_binary.segments if s.name == "text")
        assert plt_entry_at(redis_binary, text.vaddr) is None

    def test_entries_in_blocks(self, redis_binary):
        name, stub = next(iter(redis_binary.plt_entries.items()))
        partial = BlockRecord(redis_binary.name, stub + 2, 4)
        assert name in plt_entries_in_blocks(redis_binary, [partial])
        text = next(s for s in redis_binary.segments if s.name == "text")
        elsewhere = BlockRecord(redis_binary.name, text.vaddr, 8)
        assert plt_entries_in_blocks(redis_binary, [elsewhere]) == set()


class TestExecutedEntries:
    def _traced_entries(self, kernel, proc, client, binary):
        tracer = BlockTracer(kernel, proc).attach()
        for command in ("PING", "SET k v", "GET k"):
            client.command(command)
        trace = tracer.finish()
        return executed_plt_entries(binary, trace)

    def test_serving_traffic_executes_plt_stubs(self, redis_binary):
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        executed = self._traced_entries(kernel, proc, client, redis_binary)
        assert executed
        assert executed <= set(redis_binary.plt_entries)

    def test_discovery_survives_rerandomization(self, redis_binary):
        """PLT stubs are link-time offsets in the *executable*; moving
        libc must change neither the stub map nor the executed-entry
        metric, and the process must keep serving through its stubs."""
        kernel = Kernel()
        proc = stage_redis(kernel)
        client = RedisClient(kernel, REDIS_PORT)
        before = dict(redis_binary.plt_entries)

        dynacut = DynaCut(kernel)
        dynacut.rerandomize_library(proc.pid, "libc.so")
        proc = dynacut.restored_process(proc.pid)

        assert redis_binary.plt_entries == before
        for name, stub in before.items():
            assert plt_entry_at(redis_binary, stub) == name
        executed = self._traced_entries(kernel, proc, client, redis_binary)
        assert executed
        assert executed <= set(before)
