"""Tests for coverage-drift detection and adaptive re-enable."""

from __future__ import annotations

from repro.fleet import (
    DriftDetector,
    FleetController,
    FleetPolicy,
    FleetSupervisor,
    HealthState,
    RolloutExecutor,
    get_app,
)
from repro.kernel import Kernel
from repro.workloads import (
    HttpClient,
    SECOND_NS,
    TimelineEvent,
    run_request_timeline,
)


def customized_fleet(size=2, **policy_kwargs):
    policy_kwargs.setdefault("features", get_app("lighttpd").features)
    policy_kwargs.setdefault("strategy", "rolling")
    policy_kwargs.setdefault("max_unavailable", 1)
    policy_kwargs.setdefault("probe_requests", 2)
    controller = FleetController(
        Kernel(), "lighttpd", FleetPolicy(**policy_kwargs), size=size
    )
    controller.spawn_fleet()
    report = RolloutExecutor(controller).run()
    assert report.completed
    return controller


class TestDriftDetection:
    def test_no_drift_without_feature_traffic(self):
        controller = customized_fleet()
        detector = DriftDetector(controller)
        for __ in range(3):
            controller.app.wanted_request(
                controller.kernel, controller.frontend_port
            )
            assert not detector.check()
        assert detector.status.events == []
        assert all(i.customized for i in controller.instances)

    def test_probe_traps_are_not_drift(self):
        # the rollout's own health probes deliberately hit the removal
        # set; the detector must not count that history
        controller = customized_fleet()
        detector = DriftDetector(controller)
        assert not detector.check()
        assert detector.status.events == []

    def test_feature_traffic_triggers_fleet_wide_reenable(self):
        controller = customized_fleet(size=2, drift_trap_threshold=2)
        detector = DriftDetector(controller)
        for __ in range(4):           # balanced over both instances
            controller.app.feature_request(
                controller.kernel, controller.frontend_port, "dav-write"
            )
        assert detector.check()
        status = detector.status
        assert status.triggered
        assert {event.feature for event in status.events} == {"dav-write"}
        assert sorted(status.reenabled) == ["lighttpd-0", "lighttpd-1"]
        # the fleet is pristine again and the feature serves everywhere
        for instance in controller.instances:
            assert not instance.customized
            assert controller.app.feature_request(
                controller.kernel, instance.port, "dav-write"
            )

    def test_ignore_action_logs_but_keeps_customization(self):
        controller = customized_fleet(drift_action="ignore")
        detector = DriftDetector(controller)
        controller.app.feature_request(
            controller.kernel, controller.frontend_port, "dav-write"
        )
        assert detector.check()
        assert detector.status.triggered
        assert detector.status.reenabled == []
        assert all(i.customized for i in controller.instances)

    def test_sliding_window_expires_old_traps(self):
        controller = customized_fleet(
            drift_trap_threshold=2, drift_window_ns=2 * SECOND_NS
        )
        detector = DriftDetector(controller)
        controller.app.feature_request(
            controller.kernel, controller.frontend_port, "dav-write"
        )
        assert not detector.check()       # 1 trap < threshold
        controller.kernel.clock_ns += 3 * SECOND_NS
        controller.app.feature_request(
            controller.kernel, controller.frontend_port, "dav-write"
        )
        # the first trap has aged out of the window: still below threshold
        assert not detector.check()
        assert not detector.status.triggered

    def test_status_serializes(self):
        controller = customized_fleet()
        detector = DriftDetector(controller)
        controller.app.feature_request(
            controller.kernel, controller.frontend_port, "dav-write"
        )
        detector.check()
        payload = detector.status.to_dict()
        assert payload["triggered"] is True
        assert payload["events"][0]["feature"] == "dav-write"


class TestDriftEndToEnd:
    def test_workload_shift_reenables_within_drift_window(self):
        """The acceptance scenario: a live workload drifts onto a removed
        feature and the fleet adapts — automatic re-enable within the
        policy's drift window of the first drifted trap."""
        policy_window = 6 * SECOND_NS
        controller = customized_fleet(
            size=3, drift_window_ns=policy_window, drift_trap_threshold=2
        )
        detector = DriftDetector(controller)
        app, kernel = controller.app, controller.kernel
        shift_at = 3 * SECOND_NS
        start = kernel.clock_ns

        def request_once() -> bool:
            if kernel.clock_ns - start < shift_at:
                return app.wanted_request(kernel, controller.frontend_port)
            # drifted mix: wanted traffic now includes the removed feature
            app.wanted_request(kernel, controller.frontend_port)
            app.feature_request(
                kernel, controller.frontend_port, "dav-write"
            )
            return True

        events = [
            TimelineEvent(at_ns=i * SECOND_NS, label=f"drift-check-{i}",
                          action=detector.check)
            for i in range(1, 10)
        ]
        timeline = run_request_timeline(
            kernel, request_once,
            duration_ns=10 * SECOND_NS, events=events,
        )
        status = detector.status
        assert timeline.failed_requests == 0
        assert status.triggered
        assert status.first_drift_ns is not None
        assert status.triggered_ns - status.first_drift_ns <= policy_window
        assert len(status.reenabled) == 3
        assert all(not i.customized for i in controller.instances)
        assert app.feature_request(
            kernel, controller.frontend_port, "dav-write"
        )


# ----------------------------------------------------------------------
# DynaShelve: drift_action="shelve" / "recustomize"


def _put(kernel, port, serial) -> bool:
    """One PUT — only the write half of dav-write, the DELETE half
    stays cold (the adapter's feature_request would exercise both)."""
    client = HttpClient(kernel, port)
    return client.put(f"/drift-{serial:04d}.txt", "x").status == 201


def _verify_fleet(**policy_kwargs):
    policy_kwargs.setdefault("trap_policy", "verify")
    policy_kwargs.setdefault("block_mode", "all")
    policy_kwargs.setdefault("drift_trap_threshold", 2)
    return customized_fleet(**policy_kwargs)


def _removed(instance) -> list[int]:
    return [
        block.offset
        for block in instance.engine.disabled_blocks(
            instance.root_pid, "dav-write"
        )
    ]


class TestShelveDrift:
    def test_burst_shelves_only_the_trapping_blocks(self):
        controller = _verify_fleet(
            size=2, drift_action="shelve", shelve_max_live_blocks=64
        )
        detector = DriftDetector(controller)
        target, other = controller.instances
        baseline = len(_removed(target))
        assert _put(controller.kernel, target.port, 1)
        assert detector.check()
        status = detector.status
        assert status.shelve_rounds == 1
        assert status.shelved_blocks > 0
        shelf = target.engine.shelved_offsets(target.root_pid, "dav-write")
        assert len(shelf) == status.shelved_blocks
        # the cold half of the removal set stays patched...
        assert 0 < len(_removed(target)) < baseline
        assert len(_removed(target)) + len(shelf) == baseline
        # ...the instance stays customized, in service, not degraded
        assert target.customized and not target.degraded
        # and the other instance is untouched
        assert other.engine.shelved_offsets(other.root_pid, "dav-write") == []
        assert len(_removed(other)) == baseline
        # the shelved path now serves without trapping again
        assert _put(controller.kernel, target.port, 2)
        assert not detector.check()
        assert detector.status.shelved_blocks == status.shelved_blocks

    def test_shelving_surfaces_in_controller_status(self):
        controller = _verify_fleet(
            size=2, drift_action="shelve", shelve_max_live_blocks=64
        )
        detector = DriftDetector(controller)
        target = controller.instances[0]
        assert _put(controller.kernel, target.port, 1)
        assert detector.check()
        status = controller.status()
        entry = next(
            i for i in status["instances"] if i["name"] == target.name
        )
        assert entry["shelved_blocks"]["dav-write"] > 0
        assert status["drift"]["shelve_rounds"] == 1
        assert status["drift"]["shelved_blocks"] > 0

    def test_cold_shelf_decays_back(self):
        controller = _verify_fleet(
            size=2, drift_action="shelve", shelve_max_live_blocks=64,
            shelve_decay_ns=2 * SECOND_NS,
        )
        detector = DriftDetector(controller)
        target = controller.instances[0]
        baseline = len(_removed(target))
        assert _put(controller.kernel, target.port, 1)
        assert detector.check()
        shelved = detector.status.shelved_blocks
        # cold for longer than the decay window: the sweep re-removes
        controller.kernel.clock_ns += 3 * SECOND_NS
        detector.check()
        assert detector.status.decayed_blocks == shelved
        assert target.engine.shelved_offsets(target.root_pid, "dav-write") == []
        assert len(_removed(target)) == baseline
        # the disabling session's handler tables survived: a decayed
        # block heals (and re-shelves) when the traffic returns
        assert _put(controller.kernel, target.port, 2)
        assert detector.check()
        assert detector.status.shelve_rounds == 2

    def test_hot_shelf_does_not_decay(self):
        controller = _verify_fleet(
            size=2, drift_action="shelve", shelve_max_live_blocks=64,
            shelve_decay_ns=60 * SECOND_NS,
        )
        detector = DriftDetector(controller)
        target = controller.instances[0]
        assert _put(controller.kernel, target.port, 1)
        assert detector.check()
        controller.kernel.clock_ns += 3 * SECOND_NS
        detector.check()
        assert detector.status.decayed_blocks == 0
        assert target.engine.shelved_offsets(target.root_pid, "dav-write")

    def test_shelf_overflow_escalates_to_local_reenable(self):
        # the PUT path is wider than the shelf cap: block-granular
        # patching is not worth the churn, fall back to a full local
        # re-enable and mark the instance degraded
        controller = _verify_fleet(
            size=2, drift_action="shelve", shelve_max_live_blocks=4
        )
        detector = DriftDetector(controller)
        target, other = controller.instances
        assert _put(controller.kernel, target.port, 1)
        assert detector.check()
        status = detector.status
        assert status.escalated == [target.name]
        assert target.degraded and not target.customized
        assert target.engine.shelved_offsets(target.root_pid, "dav-write") == []
        # blast radius is one instance: the rest of the fleet keeps
        # its full removal set
        assert other.customized and not other.degraded


class TestRecustomizeDrift:
    def test_first_round_narrows_only_the_drifted_instance(self):
        controller = _verify_fleet(size=2, drift_action="recustomize")
        detector = DriftDetector(controller)
        target, other = controller.instances
        baseline = len(_removed(target))
        assert _put(controller.kernel, target.port, 1)
        assert detector.check()
        rounds = detector.status.recustomize_rounds
        assert len(rounds) == 1
        entry = rounds[0]
        assert entry["scope"] == "instance"
        assert entry["instances"] == [target.name]
        assert 0 < entry["narrowed_blocks"] < baseline
        assert entry["dead_restores"] == 0
        # the drifted instance runs the narrowed set, the other still
        # runs the full one
        assert len(_removed(target)) == entry["narrowed_blocks"]
        assert len(_removed(other)) == baseline
        # the narrowed instance serves the drifted path trap-free
        seen = target.traps_seen
        assert _put(controller.kernel, target.port, 2)
        assert not detector.check()
        assert target.traps_seen == seen

    def test_second_round_rolls_out_fleet_wide(self):
        controller = _verify_fleet(size=2, drift_action="recustomize")
        detector = DriftDetector(controller)
        target, other = controller.instances
        baseline = len(_removed(target))
        assert _put(controller.kernel, target.port, 1)
        assert detector.check()
        # the same drifted mix hits an instance still running the full
        # set: the narrowed set "still storms", round 2 goes fleet-wide
        assert _put(controller.kernel, other.port, 2)
        assert detector.check()
        rounds = detector.status.recustomize_rounds
        assert [r["scope"] for r in rounds] == ["instance", "fleet"]
        narrowed = rounds[1]["narrowed_blocks"]
        assert 0 < narrowed < baseline
        assert rounds[1]["dead_restores"] == 0
        # the narrowed set is now the fleet's removal set, everywhere
        assert len(controller.features["dav-write"].blocks) == narrowed
        for instance in controller.instances:
            assert len(_removed(instance)) == narrowed
            assert instance.customized


class TestHealthSegregation:
    def test_quarantined_instance_traps_are_not_drift(self):
        # regression: a recovery replaying committed state re-executes
        # removed code; with drift_trap_threshold=1 that single trap
        # used to re-enable the feature fleet-wide
        controller = _verify_fleet(size=2, drift_trap_threshold=1)
        supervisor = FleetSupervisor(controller)
        detector = DriftDetector(controller)
        target = controller.instances[0]
        supervisor.records[target.name].state = HealthState.QUARANTINED
        assert _put(controller.kernel, target.port, 1)
        assert not detector.check()
        assert detector.status.events == []
        assert detector.status.segregated_traps > 0
        assert not detector.status.triggered
        assert all(i.customized for i in controller.instances)

    def test_healthy_instance_traps_still_count(self):
        controller = _verify_fleet(size=2, drift_trap_threshold=1)
        FleetSupervisor(controller)
        detector = DriftDetector(controller)
        target = controller.instances[0]
        assert _put(controller.kernel, target.port, 1)
        assert detector.check()
        assert detector.status.triggered
        assert detector.status.segregated_traps == 0
