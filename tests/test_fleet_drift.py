"""Tests for coverage-drift detection and adaptive re-enable."""

from __future__ import annotations

from repro.fleet import (
    DriftDetector,
    FleetController,
    FleetPolicy,
    RolloutExecutor,
    get_app,
)
from repro.kernel import Kernel
from repro.workloads import SECOND_NS, TimelineEvent, run_request_timeline


def customized_fleet(size=2, **policy_kwargs):
    policy_kwargs.setdefault("features", get_app("lighttpd").features)
    policy_kwargs.setdefault("strategy", "rolling")
    policy_kwargs.setdefault("max_unavailable", 1)
    policy_kwargs.setdefault("probe_requests", 2)
    controller = FleetController(
        Kernel(), "lighttpd", FleetPolicy(**policy_kwargs), size=size
    )
    controller.spawn_fleet()
    report = RolloutExecutor(controller).run()
    assert report.completed
    return controller


class TestDriftDetection:
    def test_no_drift_without_feature_traffic(self):
        controller = customized_fleet()
        detector = DriftDetector(controller)
        for __ in range(3):
            controller.app.wanted_request(
                controller.kernel, controller.frontend_port
            )
            assert not detector.check()
        assert detector.status.events == []
        assert all(i.customized for i in controller.instances)

    def test_probe_traps_are_not_drift(self):
        # the rollout's own health probes deliberately hit the removal
        # set; the detector must not count that history
        controller = customized_fleet()
        detector = DriftDetector(controller)
        assert not detector.check()
        assert detector.status.events == []

    def test_feature_traffic_triggers_fleet_wide_reenable(self):
        controller = customized_fleet(size=2, drift_trap_threshold=2)
        detector = DriftDetector(controller)
        for __ in range(4):           # balanced over both instances
            controller.app.feature_request(
                controller.kernel, controller.frontend_port, "dav-write"
            )
        assert detector.check()
        status = detector.status
        assert status.triggered
        assert {event.feature for event in status.events} == {"dav-write"}
        assert sorted(status.reenabled) == ["lighttpd-0", "lighttpd-1"]
        # the fleet is pristine again and the feature serves everywhere
        for instance in controller.instances:
            assert not instance.customized
            assert controller.app.feature_request(
                controller.kernel, instance.port, "dav-write"
            )

    def test_ignore_action_logs_but_keeps_customization(self):
        controller = customized_fleet(drift_action="ignore")
        detector = DriftDetector(controller)
        controller.app.feature_request(
            controller.kernel, controller.frontend_port, "dav-write"
        )
        assert detector.check()
        assert detector.status.triggered
        assert detector.status.reenabled == []
        assert all(i.customized for i in controller.instances)

    def test_sliding_window_expires_old_traps(self):
        controller = customized_fleet(
            drift_trap_threshold=2, drift_window_ns=2 * SECOND_NS
        )
        detector = DriftDetector(controller)
        controller.app.feature_request(
            controller.kernel, controller.frontend_port, "dav-write"
        )
        assert not detector.check()       # 1 trap < threshold
        controller.kernel.clock_ns += 3 * SECOND_NS
        controller.app.feature_request(
            controller.kernel, controller.frontend_port, "dav-write"
        )
        # the first trap has aged out of the window: still below threshold
        assert not detector.check()
        assert not detector.status.triggered

    def test_status_serializes(self):
        controller = customized_fleet()
        detector = DriftDetector(controller)
        controller.app.feature_request(
            controller.kernel, controller.frontend_port, "dav-write"
        )
        detector.check()
        payload = detector.status.to_dict()
        assert payload["triggered"] is True
        assert payload["events"][0]["feature"] == "dav-write"


class TestDriftEndToEnd:
    def test_workload_shift_reenables_within_drift_window(self):
        """The acceptance scenario: a live workload drifts onto a removed
        feature and the fleet adapts — automatic re-enable within the
        policy's drift window of the first drifted trap."""
        policy_window = 6 * SECOND_NS
        controller = customized_fleet(
            size=3, drift_window_ns=policy_window, drift_trap_threshold=2
        )
        detector = DriftDetector(controller)
        app, kernel = controller.app, controller.kernel
        shift_at = 3 * SECOND_NS
        start = kernel.clock_ns

        def request_once() -> bool:
            if kernel.clock_ns - start < shift_at:
                return app.wanted_request(kernel, controller.frontend_port)
            # drifted mix: wanted traffic now includes the removed feature
            app.wanted_request(kernel, controller.frontend_port)
            app.feature_request(
                kernel, controller.frontend_port, "dav-write"
            )
            return True

        events = [
            TimelineEvent(at_ns=i * SECOND_NS, label=f"drift-check-{i}",
                          action=detector.check)
            for i in range(1, 10)
        ]
        timeline = run_request_timeline(
            kernel, request_once,
            duration_ns=10 * SECOND_NS, events=events,
        )
        status = detector.status
        assert timeline.failed_requests == 0
        assert status.triggered
        assert status.first_drift_ns is not None
        assert status.triggered_ns - status.first_drift_ns <= policy_window
        assert len(status.reenabled) == 3
        assert all(not i.customized for i in controller.instances)
        assert app.feature_request(
            kernel, controller.frontend_port, "dav-write"
        )
