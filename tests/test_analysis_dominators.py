"""Tests for the dominator analysis (repro.analysis.dominators)."""

from __future__ import annotations

from repro.analysis import (
    VIRTUAL_ROOT,
    collectively_dominated,
    compute_dominators,
)

#           0
#          / \
#         1   2
#          \ /
#           3 -> 4
DIAMOND = {0: (1, 2), 1: (3,), 2: (3,), 3: (4,), 4: ()}


class TestDominatorTree:
    def test_diamond_join_dominated_by_head(self):
        tree = compute_dominators(DIAMOND, [0])
        assert tree.idom[3] == 0       # neither arm dominates the join
        assert tree.idom[1] == 0
        assert tree.idom[4] == 3

    def test_dominates_is_reflexive_and_transitive(self):
        tree = compute_dominators(DIAMOND, [0])
        assert tree.dominates(3, 3)
        assert tree.dominates(0, 4)    # 0 idom 3 idom 4
        assert not tree.dominates(1, 3)

    def test_dominators_of_chain(self):
        tree = compute_dominators(DIAMOND, [0])
        assert tree.dominators_of(4) == [4, 3, 0]
        assert tree.dominators_of(99) == []

    def test_dominated_by(self):
        tree = compute_dominators(DIAMOND, [0])
        assert tree.dominated_by(3) == {3, 4}
        assert tree.dominated_by(0) == {0, 1, 2, 3, 4}

    def test_unreachable_blocks_absent(self):
        edges = {0: (1,), 5: (6,), 6: ()}
        tree = compute_dominators(edges, [0])
        assert 1 in tree
        assert 5 not in tree and 6 not in tree

    def test_multiple_roots_use_virtual_root(self):
        # 10 and 20 both reach 30 independently: no real dominator
        edges = {10: (30,), 20: (30,), 30: ()}
        tree = compute_dominators(edges, [10, 20])
        assert tree.root == VIRTUAL_ROOT
        assert tree.idom[30] == VIRTUAL_ROOT
        assert tree.dominates(VIRTUAL_ROOT, 30)
        assert not tree.dominates(10, 30)

    def test_no_roots(self):
        tree = compute_dominators(DIAMOND, [])
        assert tree.idom == {}

    def test_loop(self):
        edges = {0: (1,), 1: (2,), 2: (1, 3), 3: ()}
        tree = compute_dominators(edges, [0])
        assert tree.idom[1] == 0
        assert tree.idom[2] == 1
        assert tree.idom[3] == 2


class TestCollectiveDomination:
    def test_singleton_cutset_matches_dominator_tree(self):
        tree = compute_dominators(DIAMOND, [0])
        for cut in (1, 2, 3):
            expected = tree.dominated_by(cut) - {cut}
            assert collectively_dominated(DIAMOND, [0], {cut}) == expected

    def test_two_guards_cut_the_join(self):
        # both arms guarded: the join and everything past it is covered
        assert collectively_dominated(DIAMOND, [0], {1, 2}) == {3, 4}

    def test_one_open_arm_leaks(self):
        assert collectively_dominated(DIAMOND, [0], {1}) == set()

    def test_unreachable_not_reported(self):
        edges = {0: (1,), 7: (8,), 8: ()}
        assert collectively_dominated(edges, [0], {1}) == set()

    def test_cutset_members_excluded(self):
        covered = collectively_dominated(DIAMOND, [0], {3})
        assert 3 not in covered and covered == {4}
