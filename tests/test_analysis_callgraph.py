"""Tests for interprocedural call-graph recovery."""

from __future__ import annotations

from repro.analysis import build_callgraph, owned_functions
from repro.tracing import BlockRecord

from .helpers import build_asm, build_minic

CALLS = """
func helper(x) { return x + 1; }
func outer(x) { return helper(x) * 2; }
func main() { return outer(3); }
"""


class TestCallGraph:
    def test_direct_edges(self):
        image = build_minic(CALLS, "calls", with_libc=False)
        graph = build_callgraph(image)
        assert "helper" in graph.callees("outer")
        assert "outer" in graph.callees("main")
        assert "outer" in graph.callers("helper")

    def test_function_of(self):
        image = build_minic(CALLS, "fnof", with_libc=False)
        graph = build_callgraph(image)
        start = image.symbol_address("helper")
        assert graph.function_of(start) == "helper"
        assert graph.function_of(start + 1) == "helper"

    def test_reachable_from(self):
        image = build_minic(CALLS, "reach", with_libc=False)
        graph = build_callgraph(image)
        reach = graph.reachable_from({"main"})
        assert {"main", "outer", "helper"} <= reach

    def test_unreachable_function_not_reached(self):
        image = build_minic(
            "func island() { return 7; }\nfunc main() { return 0; }",
            "island", with_libc=False,
        )
        graph = build_callgraph(image)
        assert "island" not in graph.reachable_from({"main"})
        assert "island" in graph.functions

    def test_plt_calls_resolve_to_import(self):
        image = build_minic(
            'extern func strlen;\nfunc main() { return strlen("hi"); }',
            "pltcall",
        )
        graph = build_callgraph(image)
        assert "strlen" in graph.callees("main")
        sites = [s for s in graph.sites if s.callee == "strlen"]
        assert sites and all(s.kind == "plt" for s in sites)

    def test_indirect_call_site_recorded(self):
        image = build_asm(
            """
            .section text
            .global _start
            .global target
            _start:
                lea r1, target
                callr r1
                hlt
            target:
                ret
            """,
            "indirect",
        )
        graph = build_callgraph(image)
        kinds = {site.kind for site in graph.sites}
        assert "indirect" in kinds
        site = next(s for s in graph.sites if s.kind == "indirect")
        assert site.callee is None and site.target is None

    def test_call_sites_into(self):
        image = build_minic(CALLS, "sites", with_libc=False)
        graph = build_callgraph(image)
        sites = graph.call_sites_into("helper")
        assert len(sites) == 1
        assert sites[0].caller == "outer"


class TestOwnedFunctions:
    def test_helper_owned_when_all_callers_removed(self):
        image = build_minic(CALLS, "owned", with_libc=False)
        graph = build_callgraph(image)
        outer = graph.functions["outer"]
        helper = graph.functions["helper"]
        removed_starts = {outer.start, helper.start}
        removed_bytes = set(range(outer.start, outer.end)) | set(
            range(helper.start, helper.end)
        )
        owned = owned_functions(graph, removed_starts, removed_bytes)
        # helper's only call site (in outer) is removed -> owned;
        # outer is still called from kept main -> not owned
        assert "helper" in owned
        assert "outer" not in owned

    def test_helper_not_owned_with_live_caller(self):
        image = build_minic(CALLS, "liveown", with_libc=False)
        graph = build_callgraph(image)
        helper = graph.functions["helper"]
        owned = owned_functions(
            graph, {helper.start}, set(range(helper.start, helper.end))
        )
        # outer still calls helper from kept code
        assert "helper" not in owned


def test_owned_matches_block_records():
    """The rewriter feeds BlockRecord-shaped sets; byte sets line up."""
    image = build_minic(CALLS, "recs", with_libc=False)
    graph = build_callgraph(image)
    records = [
        BlockRecord("recs", node.start, node.end - node.start)
        for name, node in graph.functions.items()
        if name in ("outer", "helper")
    ]
    removed_bytes = {
        offset
        for record in records
        for offset in range(record.offset, record.offset + record.size)
    }
    owned = owned_functions(
        graph, {r.offset for r in records}, removed_bytes
    )
    assert "helper" in owned
