"""Property tests for the mesh's consistent-hash ring.

The mesh's whole-host failure story rests on three ring properties,
pinned here with hypothesis:

1. **determinism** — the same shard set and replica count always maps
   a key to the same shard, across freshly built rings (no dependence
   on interpreter hash randomization or insertion order);
2. **minimal remapping** — removing one shard only remaps the keys
   that shard owned; every other key keeps its assignment;
3. **single-crash liveness** — with any one shard marked down, every
   key still maps to some live shard (as long as two shards exist).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh import HashRing, RingError, stable_hash

keys = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=40, unique=True
)
shard_sets = st.lists(
    st.integers(min_value=0, max_value=31), min_size=2, max_size=8, unique=True
)
replica_counts = st.integers(min_value=1, max_value=16)


class TestStableHash:
    def test_stable_values(self):
        # frozen expectations: a change here would silently remap every
        # deployed keyspace
        assert stable_hash("a") == stable_hash("a")
        assert stable_hash("a") != stable_hash("b")
        assert 0 <= stable_hash("anything") < 2**64

    @given(st.text(max_size=64))
    def test_in_64_bit_range(self, value):
        assert 0 <= stable_hash(value) < 2**64


class TestRingConstruction:
    def test_zero_replicas_rejected(self):
        with pytest.raises(RingError, match="replicas"):
            HashRing(replicas=0)

    def test_empty_ring_has_no_owner(self):
        with pytest.raises(RingError, match="no shards"):
            HashRing().shard_for("k")

    def test_add_is_idempotent(self):
        ring = HashRing(replicas=4, shards=[0, 1])
        ring.add(1)
        assert ring.to_dict()["points"] == 8

    def test_remove_unknown_is_noop(self):
        ring = HashRing(replicas=4, shards=[0])
        ring.remove(9)
        assert ring.shards == (0,)

    def test_all_down_raises(self):
        ring = HashRing(replicas=4, shards=[0, 1])
        with pytest.raises(RingError, match="all"):
            ring.shard_for("k", down={0, 1})


class TestRingProperties:
    @settings(max_examples=60, deadline=None)
    @given(shards=shard_sets, replicas=replica_counts, ks=keys)
    def test_deterministic_across_fresh_rings(self, shards, replicas, ks):
        # build one ring in order and one reversed: same assignments
        forward = HashRing(replicas, shards=shards)
        backward = HashRing(replicas, shards=list(reversed(shards)))
        for key in ks:
            assert forward.shard_for(key) == backward.shard_for(key)

    @settings(max_examples=60, deadline=None)
    @given(shards=shard_sets, replicas=replica_counts, ks=keys)
    def test_remove_only_remaps_the_removed_arc(self, shards, replicas, ks):
        ring = HashRing(replicas, shards=shards)
        before = {key: ring.shard_for(key) for key in ks}
        victim = shards[0]
        ring.remove(victim)
        for key in ks:
            after = ring.shard_for(key)
            if before[key] == victim:
                assert after != victim
            else:
                # a key the victim never owned must not move at all
                assert after == before[key]

    @settings(max_examples=60, deadline=None)
    @given(shards=shard_sets, replicas=replica_counts, ks=keys)
    def test_single_crash_still_maps_every_key(self, shards, replicas, ks):
        ring = HashRing(replicas, shards=shards)
        for crashed in shards:
            for key in ks:
                survivor = ring.shard_for(key, down={crashed})
                assert survivor in shards
                assert survivor != crashed

    @settings(max_examples=40, deadline=None)
    @given(shards=shard_sets, replicas=replica_counts, ks=keys)
    def test_down_matches_remove(self, shards, replicas, ks):
        # marking a shard down routes exactly where removing it would:
        # failover follows the same successor arcs as a permanent
        # topology change, so recovery cannot "move the data back"
        ring = HashRing(replicas, shards=shards)
        shrunk = HashRing(replicas, shards=[s for s in shards if s != shards[-1]])
        for key in ks:
            assert ring.shard_for(key, down={shards[-1]}) == shrunk.shard_for(key)

    @settings(max_examples=40, deadline=None)
    @given(shards=shard_sets, replicas=replica_counts, ks=keys)
    def test_successors_start_with_owner_and_cover_all(self, shards, replicas, ks):
        ring = HashRing(replicas, shards=shards)
        for key in ks:
            order = list(ring.successors(key))
            assert order[0] == ring.shard_for(key)
            assert sorted(order) == sorted(shards)


class TestRingBalance:
    def test_replicas_smooth_the_keyspace(self):
        # with enough virtual nodes no shard owns a wildly outsized
        # share (a sanity bound, not a statistical claim)
        ring = HashRing(replicas=64, shards=[0, 1, 2, 3])
        share = ring.arc_sizes(samples=2000)
        assert sum(share.values()) == 2000
        for owned in share.values():
            assert 0.10 * 2000 < owned < 0.45 * 2000
