"""Tests for the RAZOR-like and CHISEL-like static-debloating baselines."""

from __future__ import annotations

from repro.analysis import build_cfg
from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.core import apply_debloat, chisel_debloat, razor_debloat
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import RedisClient


def _profiled():
    kernel = Kernel()
    proc = stage_redis(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    from repro.apps.kvstore import READY_LINE

    kernel.run_until(lambda: READY_LINE in proc.stdout_text())
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "SET a 1", "GET a", "DBSIZE"):
        client.command(cmd)
    trace = tracer.finish()
    return kernel, trace


class TestBaselineInvariants:
    def test_chisel_keeps_exactly_traced(self, redis_binary):
        kernel, trace = _profiled()
        result = chisel_debloat(redis_binary, [trace])
        traced = {b.offset for b in trace.module_blocks(REDIS_BINARY)}
        cfg_starts = build_cfg(redis_binary).block_starts()
        assert result.kept_starts == traced & cfg_starts
        assert result.kept_starts.isdisjoint(result.removed_starts)
        assert (
            len(result.kept_starts) + len(result.removed_starts)
            == result.total_blocks
        )

    def test_razor_keeps_superset_of_chisel(self, redis_binary):
        kernel, trace = _profiled()
        chisel = chisel_debloat(redis_binary, [trace])
        razor = razor_debloat(redis_binary, [trace], expansion=1)
        assert chisel.kept_starts <= razor.kept_starts
        assert razor.live_fraction >= chisel.live_fraction

    def test_razor_expansion_monotone(self, redis_binary):
        kernel, trace = _profiled()
        one = razor_debloat(redis_binary, [trace], expansion=1)
        three = razor_debloat(redis_binary, [trace], expansion=3)
        assert one.kept_starts <= three.kept_starts

    def test_live_fractions_sane(self, redis_binary):
        kernel, trace = _profiled()
        for result in (
            chisel_debloat(redis_binary, [trace]),
            razor_debloat(redis_binary, [trace]),
        ):
            assert 0.0 < result.live_fraction < 1.0
            assert abs(result.live_fraction + result.removed_fraction - 1.0) < 1e-9


class TestStaticRewrite:
    def test_debloated_binary_still_serves_traced_features(self):
        kernel, trace = _profiled()
        binary = kernel.binaries[REDIS_BINARY]
        result = razor_debloat(binary, [trace], expansion=2)
        debloated = apply_debloat(binary, result)

        fresh = Kernel()
        fresh.register_binary(kernel.binaries["libc.so"])
        fresh.register_binary(debloated)
        from repro.apps.kvstore import READY_LINE, install_default_config

        install_default_config(fresh.fs)
        proc = fresh.spawn(REDIS_BINARY)
        assert fresh.run_until(
            lambda: READY_LINE in proc.stdout_text(), max_instructions=5_000_000
        )
        client = RedisClient(fresh, REDIS_PORT)
        assert client.ping()
        assert client.set("a", "2")
        assert client.get("a") == "2"

    def test_debloated_binary_kills_untraced_feature(self):
        """Static debloating's usability problem: untraced features
        terminate the program — there is no dynamic way back."""
        kernel, trace = _profiled()
        binary = kernel.binaries[REDIS_BINARY]
        debloated = apply_debloat(binary, chisel_debloat(binary, [trace]))

        fresh = Kernel()
        fresh.register_binary(kernel.binaries["libc.so"])
        fresh.register_binary(debloated)
        from repro.apps.kvstore import READY_LINE, install_default_config

        install_default_config(fresh.fs)
        proc = fresh.spawn(REDIS_BINARY)
        fresh.run_until(
            lambda: READY_LINE in proc.stdout_text(), max_instructions=5_000_000
        )
        sock = fresh.connect(REDIS_PORT)
        sock.send("STRALGO LCS ab ac\n")   # never traced
        fresh.run_until(lambda: not proc.alive, max_instructions=3_000_000)
        assert not proc.alive

    def test_debloated_image_differs_only_in_code(self):
        kernel, trace = _profiled()
        binary = kernel.binaries[REDIS_BINARY]
        debloated = apply_debloat(binary, chisel_debloat(binary, [trace]))
        assert debloated.symbols == binary.symbols
        assert debloated.plt_entries == binary.plt_entries
        for a, b in zip(binary.segments, debloated.segments):
            if a.name in ("text", "plt"):
                assert len(a.data) == len(b.data)
            else:
                assert a.data == b.data
