"""Tests for DynaGuard: health machine, recovery, and circuit breaking."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.transaction import PHASE_RETRYING
from repro.faults import FaultPlan
from repro.fleet import (
    FleetController,
    FleetError,
    FleetPolicy,
    FleetSupervisor,
    HealthError,
    HealthRecord,
    HealthState,
    InstanceState,
    RolloutExecutor,
    inject_chaos,
)
from repro.kernel import Kernel
from repro.workloads import HttpClient


def make_supervised(size=2, customize=True, **policy_kwargs):
    policy_kwargs.setdefault("features", ("dav-write",))
    policy_kwargs.setdefault("probe_requests", 2)
    policy_kwargs.setdefault("strategy", "rolling")
    controller = FleetController(
        Kernel(), "lighttpd", FleetPolicy(**policy_kwargs), size=size
    )
    controller.spawn_fleet()
    if customize:
        report = RolloutExecutor(controller).run()
        assert report.state == "completed"
    return controller, FleetSupervisor(controller)


# ----------------------------------------------------------------------
# the health state machine (no kernel needed)


class TestHealthMachine:
    def test_probe_failures_walk_to_down(self):
        record = HealthRecord("i")
        record.observe_failure(1, suspect_threshold=2)
        assert record.state is HealthState.SUSPECT
        record.observe_failure(2, suspect_threshold=2)
        assert record.state is HealthState.DOWN

    def test_success_clears_suspicion(self):
        record = HealthRecord("i")
        record.observe_failure(1, suspect_threshold=3)
        record.observe_ok(2)
        assert record.state is HealthState.HEALTHY
        assert record.consecutive_probe_failures == 0

    def test_crash_skips_the_suspect_phase(self):
        record = HealthRecord("i")
        record.observe_crash(1)
        assert record.state is HealthState.DOWN

    def test_recovery_round_trip_resets_counters(self):
        record = HealthRecord("i")
        record.observe_crash(1)
        record.begin_restore(2)
        assert record.state is HealthState.RESTORING
        record.restore_succeeded(3)
        assert record.state is HealthState.HEALTHY
        assert record.recovery_failures == 0

    def test_failed_restores_reach_quarantine(self):
        record = HealthRecord("i")
        record.observe_crash(1)
        record.begin_restore(2)
        record.restore_failed(3, quarantine_limit=2)
        assert record.state is HealthState.DOWN
        record.begin_restore(4)
        record.restore_failed(5, quarantine_limit=2)
        assert record.state is HealthState.QUARANTINED

    def test_quarantine_absorbs_observations(self):
        record = HealthRecord("i")
        record.observe_crash(1)
        record.begin_restore(2)
        record.restore_failed(3, quarantine_limit=1)
        record.observe_ok(4)
        record.observe_failure(5, suspect_threshold=1)
        record.observe_crash(6)
        assert record.state is HealthState.QUARANTINED
        with pytest.raises(HealthError):
            record.begin_restore(7)

    def test_reinstate_returns_to_down_not_healthy(self):
        record = HealthRecord("i")
        record.observe_crash(1)
        record.begin_restore(2)
        record.restore_failed(3, quarantine_limit=1)
        record.reinstate(4)
        assert record.state is HealthState.DOWN
        assert record.recovery_failures == 0

    def test_reinstate_outside_quarantine_rejected(self):
        record = HealthRecord("i")
        with pytest.raises(HealthError, match="reinstate"):
            record.reinstate(1)

    def test_illegal_transitions_rejected(self):
        record = HealthRecord("i")
        with pytest.raises(HealthError):        # HEALTHY -> RESTORING
            record.begin_restore(1)
        record.observe_crash(2)
        with pytest.raises(HealthError):        # DOWN -> HEALTHY directly
            record.restore_succeeded(3)


_OPS = st.sampled_from(
    ["ok", "fail", "crash", "begin", "succeed", "fail_restore", "reinstate"]
)


def _apply(record: HealthRecord, op: str, clock: int, threshold: int, limit: int):
    try:
        if op == "ok":
            record.observe_ok(clock)
        elif op == "fail":
            record.observe_failure(clock, threshold)
        elif op == "crash":
            record.observe_crash(clock)
        elif op == "begin":
            record.begin_restore(clock)
        elif op == "succeed":
            record.restore_succeeded(clock)
        elif op == "fail_restore":
            record.restore_failed(clock, limit)
        elif op == "reinstate":
            record.reinstate(clock)
    except HealthError:
        pass                                    # illegal op: state unchanged


class TestHealthProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(_OPS, max_size=40),
        threshold=st.integers(min_value=1, max_value=3),
        limit=st.integers(min_value=1, max_value=3),
    )
    def test_down_never_becomes_healthy_without_restoring(
        self, ops, threshold, limit
    ):
        record = HealthRecord("i")
        for clock, op in enumerate(ops, start=1):
            _apply(record, op, clock, threshold, limit)
        states = [HealthState.HEALTHY] + [state for __, state in record.history]
        for prev, cur in zip(states, states[1:]):
            assert not (
                prev is HealthState.DOWN and cur is HealthState.HEALTHY
            ), "DOWN -> HEALTHY must pass through RESTORING"

    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(_OPS.filter(lambda op: op != "reinstate"), max_size=40),
        threshold=st.integers(min_value=1, max_value=3),
        limit=st.integers(min_value=1, max_value=3),
    )
    def test_quarantine_absorbing_without_reinstate(self, ops, threshold, limit):
        record = HealthRecord("i")
        for clock, op in enumerate(ops, start=1):
            _apply(record, op, clock, threshold, limit)
        states = [state for __, state in record.history]
        if HealthState.QUARANTINED in states:
            first = states.index(HealthState.QUARANTINED)
            assert all(
                state is HealthState.QUARANTINED for state in states[first:]
            )
            assert record.state is HealthState.QUARANTINED


# ----------------------------------------------------------------------
# supervised recovery on a real fleet


class TestSupervisorRecovery:
    def test_crash_recovered_from_committed_checkpoint(self):
        controller, sup = make_supervised()
        target = controller.instance(1)
        controller.kernel.crash_process(target.root_pid)
        assert not controller.alive(target)
        events = sup.tick(force=True)
        assert [e.kind for e in events] == ["crash-detected", "recovered"]
        assert sup.recoveries[-1].source == "checkpoint"
        assert controller.alive(target)
        # the removal set survived the crash: restored from the
        # committed rewritten image, not a pristine one
        assert target.customized_features == ["dav-write"]
        assert not controller.app.feature_request(
            controller.kernel, target.port, "dav-write"
        )
        assert not target.degraded
        assert target.port in controller.pool.in_service()
        assert sup.record(1).state is HealthState.HEALTHY
        assert sup.settled

    def test_corrupt_image_falls_back_to_pristine_respawn(self):
        controller, sup = make_supervised()
        target = controller.instance(0)
        controller.kernel.crash_process(target.root_pid)
        plan = FaultPlan(seed=5).arm(
            "fleet.restore_image_corrupt", "permanent", on_call=1
        )
        with plan:
            sup.tick(force=True)
        assert sup.recoveries[-1].source == "respawn"
        assert sup.recoveries[-1].succeeded
        assert controller.alive(target)
        assert target.degraded
        # pristine respawn serves the feature again (no removal set)
        assert controller.app.feature_request(
            controller.kernel, target.port, "dav-write"
        )
        assert sup.record(0).state is HealthState.HEALTHY

    def test_uncustomized_instance_respawns_pristine(self):
        # no committed image exists before the first customize(): the
        # fallback path is the only recovery available
        controller, sup = make_supervised(customize=False)
        target = controller.instance(1)
        controller.kernel.crash_process(target.root_pid)
        sup.tick(force=True)
        assert sup.recoveries[-1].source == "respawn"
        assert controller.alive(target)

    def test_wedged_instance_detected_by_probe_and_recovered(self):
        # size 1 so both hang fires hit the same instance's probe
        controller, sup = make_supervised(size=1)
        plan = FaultPlan(seed=3).arm(
            "fleet.probe_hang", "transient", probability=1.0, times=2
        )
        with plan:
            sup.tick(force=True)
            assert sup.record(0).state is HealthState.SUSPECT
            sup.tick(force=True)
        # SUSPECT after the first hang, DOWN at the threshold on the
        # second, then recovery in the same supervision pass
        assert sup.record(0).state is HealthState.HEALTHY
        assert sup.recoveries[-1].source == "checkpoint"
        assert any(e.kind == "down" for e in sup.events)
        assert controller.app.wanted_request(
            controller.kernel, controller.instance(0).port
        )

    def test_quarantine_then_operator_reinstate(self):
        controller, sup = make_supervised(quarantine_limit=2)
        target = controller.instance(1)
        controller.kernel.crash_process(target.root_pid)
        plan = FaultPlan(seed=9).arm(
            "restore.memory", "permanent", probability=1.0, times=0
        )
        with plan:
            sup.tick(force=True)
            assert sup.record(1).state is HealthState.DOWN
            assert sup.record(1).recovery_failures == 1
            sup.tick(force=True)
        assert sup.record(1).state is HealthState.QUARANTINED
        assert target.state is InstanceState.QUARANTINED
        assert target.port not in controller.pool.in_service()
        assert sup.settled            # quarantine is a *clean* end state
        # quarantined instances are skipped by later ticks
        ticks_before = sup.ticks
        sup.tick(force=True)
        assert sup.ticks == ticks_before + 1
        assert sup.record(1).state is HealthState.QUARANTINED
        # operator override: recover for real this time
        events = sup.reinstate(1)
        assert [e.kind for e in events] == ["recovered"]
        assert sup.record(1).state is HealthState.HEALTHY
        assert controller.alive(target)
        assert target.state is InstanceState.IN_SERVICE

    def test_heartbeat_interval_gates_ticks(self):
        controller, sup = make_supervised(size=1)
        assert sup.tick() != [] or sup.ticks == 1       # first tick runs
        assert sup.tick() == [] and sup.ticks == 1      # too early: no-op
        controller.kernel.clock_ns += controller.policy.heartbeat_interval_ns
        sup.tick()
        assert sup.ticks == 2


class TestTrapStorm:
    def test_storm_demotes_only_the_trapping_instance(self):
        controller, sup = make_supervised(size=3, trap_storm_threshold=4)
        victim = controller.instance(2)
        others = [controller.instance(0), controller.instance(1)]
        # hammer the removed feature on the victim's own port: every
        # request traps on the removal set and gets the app's error arm
        for __ in range(6):
            controller.app.feature_request(
                controller.kernel, victim.port, "dav-write"
            )
        sup.tick(force=True)
        demotions = [e for e in sup.events if e.kind == "demoted"]
        assert [e.instance for e in demotions] == [victim.name]
        assert victim.degraded and not victim.customized
        # demoted locally: the feature serves again on the victim...
        assert controller.app.feature_request(
            controller.kernel, victim.port, "dav-write"
        )
        # ...and stays removed everywhere else (no fleet-wide re-enable)
        for other in others:
            assert other.customized_features == ["dav-write"]
            assert not other.degraded
            assert not controller.app.feature_request(
                controller.kernel, other.port, "dav-write"
            )
        assert victim.port in controller.pool.in_service()

    def test_sparse_traps_below_threshold_do_not_demote(self):
        controller, sup = make_supervised(size=2, trap_storm_threshold=50)
        victim = controller.instance(1)
        for __ in range(4):
            controller.app.feature_request(
                controller.kernel, victim.port, "dav-write"
            )
        sup.tick(force=True)
        assert not any(e.kind == "demoted" for e in sup.events)
        assert victim.customized and not victim.degraded


# ----------------------------------------------------------------------
# controller hardening (satellites)


class TestControllerHardening:
    def test_rejoin_refuses_dead_instance(self):
        controller, __ = make_supervised(customize=False)
        target = controller.instance(0)
        controller.drain(target)
        controller.kernel.crash_process(target.root_pid)
        with pytest.raises(FleetError, match="not alive"):
            controller.rejoin(target)
        assert target.port not in controller.pool.in_service()

    def test_double_drain_is_idempotent(self):
        controller, __ = make_supervised(customize=False)
        target = controller.instance(0)
        controller.drain(target)
        controller.drain(target)
        assert target.state is InstanceState.DRAINED
        assert controller.pool.in_service() == [controller.instance(1).port]
        controller.rejoin(target)
        assert target.state is InstanceState.IN_SERVICE

    def test_drain_of_quarantined_instance_keeps_quarantine(self):
        controller, __ = make_supervised(customize=False)
        target = controller.instance(1)
        target.state = InstanceState.QUARANTINED
        controller.drain(target)
        assert target.state is InstanceState.QUARANTINED
        # rejoin puts the port back but never promotes the state: only
        # the supervisor's recovery path clears a quarantine
        controller.rejoin(target)
        assert target.state is InstanceState.QUARANTINED

    def test_rollback_on_instance_dead_mid_customize(self):
        controller, __ = make_supervised()
        target = controller.instance(0)
        # simulate death mid-transaction: the journal's last word is
        # "retrying" when the crash takes the tree down
        assert target.engine.last_journal is not None
        target.engine.last_journal.record(
            PHASE_RETRYING, 2, controller.kernel.clock_ns
        )
        controller.kernel.crash_process(target.root_pid)
        with pytest.raises(FleetError, match="retrying"):
            controller.rollback(target)


class TestInjectChaos:
    def test_seeded_crash_hits_the_planned_instance(self):
        controller, __ = make_supervised(size=3, customize=False)
        plan = FaultPlan(seed=1).arm(
            "fleet.instance_crash", "transient", on_call=2, times=1
        )
        with plan:
            crashed = inject_chaos(controller)
        assert crashed == ["lighttpd-1"]
        assert not controller.alive(controller.instance(1))
        assert controller.alive(controller.instance(0))
        assert controller.alive(controller.instance(2))
        # idempotent on dead instances: the site is only visited for
        # live ones
        with plan:
            assert inject_chaos(controller) == []


# ----------------------------------------------------------------------
# the breaker's shelve arm (drift_action="shelve")


class TestStormShelving:
    def _storm_fleet(self, **policy_kwargs):
        policy_kwargs.setdefault("trap_policy", "verify")
        policy_kwargs.setdefault("block_mode", "all")
        policy_kwargs.setdefault("trap_storm_threshold", 4)
        policy_kwargs.setdefault("drift_action", "shelve")
        return make_supervised(size=2, **policy_kwargs)

    def _storm_put(self, controller, instance) -> bool:
        # one PUT on a verify-mode ALL removal heals (and logs) every
        # block of the PUT path at once: an instant storm
        client = HttpClient(controller.kernel, instance.port)
        return client.put("/storm.txt", "x").status == 201

    def test_storm_shelves_instead_of_demoting(self):
        controller, sup = self._storm_fleet(shelve_max_live_blocks=64)
        victim, other = controller.instance(0), controller.instance(1)
        assert self._storm_put(controller, victim)
        sup.tick(force=True)
        shelvings = [e for e in sup.events if e.kind == "shelved"]
        assert [e.instance for e in shelvings] == [victim.name]
        assert not any(e.kind == "demoted" for e in sup.events)
        # the victim keeps its customization minus the storming blocks
        assert victim.customized and not victim.degraded
        shelf = victim.engine.shelved_offsets(victim.root_pid, "dav-write")
        assert shelf
        assert victim.engine.disabled_blocks(victim.root_pid, "dav-write")
        assert victim.port in controller.pool.in_service()
        # blast radius: the quiet instance is untouched
        assert other.engine.shelved_offsets(other.root_pid, "dav-write") == []

    def test_storm_wider_than_the_shelf_cap_still_demotes(self):
        controller, sup = self._storm_fleet(shelve_max_live_blocks=4)
        victim = controller.instance(0)
        assert self._storm_put(controller, victim)
        sup.tick(force=True)
        assert any(e.kind == "demoted" for e in sup.events)
        assert not any(e.kind == "shelved" for e in sup.events)
        assert victim.degraded and not victim.customized
        assert victim.engine.shelved_offsets(victim.root_pid, "dav-write") == []

    def test_reenable_policy_still_demotes(self):
        # the pre-shelving breaker behaviour is the default, unchanged
        controller, sup = self._storm_fleet(drift_action="reenable",
                                            shelve_max_live_blocks=64)
        victim = controller.instance(0)
        assert self._storm_put(controller, victim)
        sup.tick(force=True)
        assert any(e.kind == "demoted" for e in sup.events)
        assert not any(e.kind == "shelved" for e in sup.events)
        assert victim.degraded and not victim.customized
