"""End-to-end tests for static removal-set refinement in DynaCut.

The scenario is the §3.2.2 over-removal hazard: a *thin* wanted
profile (two plain GETs) against a PUT/DELETE undesired profile makes
TraceDiff claim far more of Lighttpd than the DAV feature really owns.
Unrefined verify-mode removal then heals dozens of blocks at runtime;
with DynaLint refinement the suspects are never removed and only the
enforced dispatcher arms trap.
"""

from __future__ import annotations

import pytest

from repro.analysis import BlockClass
from repro.apps import LIGHTTPD_PORT, stage_lighttpd
from repro.apps.httpd_lighttpd import LIGHTTPD_BINARY, READY_LINE
from repro.core import BlockMode, DynaCut, TraceDiff, TrapPolicy
from repro.core.rewriter import RewriteError
from repro.core.verifier import read_verifier_log
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import HttpClient

DISPATCHER = "lh_handle_request"


def thin_profile():
    """(kernel, proc, feature) with a deliberately thin wanted trace."""
    kernel = Kernel()
    proc = stage_lighttpd(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: READY_LINE in proc.stdout_text(),
                     max_instructions=5_000_000)
    tracer.nudge_dump()
    client = HttpClient(kernel, LIGHTTPD_PORT)
    kernel.fs.write_file("/var/www/about.html", "<p>about</p>")
    client.get("/")
    client.get("/about.html")
    wanted = tracer.nudge_dump()
    client.put("/probe.txt", "x")
    client.delete("/probe.txt")
    undesired = tracer.finish()
    feature = TraceDiff(LIGHTTPD_BINARY).feature_blocks(
        "dav-write", [wanted], [undesired]
    )
    return kernel, proc, feature


def exercise(client):
    return [
        client.get("/").status,
        client.get("/about.html").status,
        client.get("/missing.html").status,
        client.head("/").status,
        client.options("/").status,
        client.post("/echo", "abcd").status,
    ]


def _run(refine: bool):
    kernel, proc, feature = thin_profile()
    dynacut = DynaCut(kernel)
    report = dynacut.disable_feature(
        proc.pid, feature, policy=TrapPolicy.VERIFY, mode=BlockMode.ALL,
        refine=refine, dispatcher_symbol=DISPATCHER if refine else None,
    )
    proc = dynacut.restored_process(proc.pid)
    statuses = exercise(HttpClient(kernel, LIGHTTPD_PORT))
    log = read_verifier_log(kernel, proc)
    return report, statuses, len(log.trapped_addresses)


class TestRefinedDisable:
    def test_refinement_reduces_trap_restores(self):
        base_report, base_statuses, base_traps = _run(refine=False)
        ref_report, ref_statuses, ref_traps = _run(refine=True)

        # behaviour must be identical...
        assert ref_statuses == base_statuses
        # ...but far fewer healed blocks: suspects were never removed
        assert ref_traps < base_traps

        refinement = ref_report.refinement
        assert base_report.refinement is None
        assert refinement is not None
        assert refinement.suspect                 # the thin profile lied
        assert refinement.counts["trap_required"] >= 1
        # the refined session patches strictly fewer blocks
        assert base_report.stats.blocks_patched > \
            ref_report.stats.blocks_patched

    def test_refined_lint_runs_and_is_clean(self):
        report, __, ___ = _run(refine=True)
        assert report.lint is not None
        assert report.lint.ok, report.lint.summary()

    def test_reenable_restores_byte_identity(self):
        kernel, proc, feature = thin_profile()
        dynacut = DynaCut(kernel)
        dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.VERIFY, mode=BlockMode.ALL,
            refine=True, dispatcher_symbol=DISPATCHER,
        )
        dynacut.enable_feature(
            dynacut.restored_process(proc.pid).pid, feature
        )
        proc = dynacut.restored_process(proc.pid)
        binary = kernel.binaries[LIGHTTPD_BINARY]
        module = next(m for m in proc.modules if m.name == LIGHTTPD_BINARY)
        for seg in binary.segments:
            if seg.name not in ("text", "plt") or not seg.data:
                continue
            live = proc.memory.read(
                module.load_base + seg.vaddr, len(seg.data)
            )
            assert bytes(live) == seg.data
        assert exercise(HttpClient(kernel, LIGHTTPD_PORT))[0] == 200

    def test_refine_does_not_compose_with_redirect(self):
        kernel, proc, feature = thin_profile()
        dynacut = DynaCut(kernel)
        with pytest.raises(RewriteError):
            dynacut.disable_feature(
                proc.pid, feature, policy=TrapPolicy.REDIRECT,
                refine=True, dispatcher_symbol=DISPATCHER,
            )

    def test_refine_feature_classification(self):
        kernel, __, feature = thin_profile()
        dynacut = DynaCut(kernel)
        refinement = dynacut.refine_feature(
            feature, dispatcher_symbol=DISPATCHER
        )
        counts = refinement.counts
        assert counts["provably_dead"] >= 1
        assert counts["trap_required"] >= 1
        assert counts["suspect"] >= 1
        total = sum(counts.values())
        assert total == feature.count
        for record in refinement.provably_dead:
            assert refinement.verdict_of(record) is BlockClass.PROVABLY_DEAD


class TestLintModes:
    def _profiled(self):
        return thin_profile()

    def test_lint_off(self):
        kernel, proc, feature = self._profiled()
        dynacut = DynaCut(kernel, lint_mode="off")
        report = dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.VERIFY
        )
        assert report.lint is None

    def test_lint_verify_mode_skips_terminate_policy(self):
        kernel, proc, feature = self._profiled()
        dynacut = DynaCut(kernel)        # lint_mode="verify"
        report = dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.TERMINATE
        )
        assert report.lint is None

    def test_lint_always(self):
        kernel, proc, feature = self._profiled()
        dynacut = DynaCut(kernel, lint_mode="always")
        report = dynacut.disable_feature(
            proc.pid, feature, policy=TrapPolicy.TERMINATE
        )
        assert report.lint is not None
        assert report.lint.ok


class TestInitRemovalLint:
    """The fig7-style init-removal image must lint clean: its wipe
    ranges are byte-granular and legitimately start mid-block."""

    def _init_profile(self):
        from repro.core import init_only_blocks

        kernel = Kernel()
        proc = stage_lighttpd(kernel, run_to_ready=False)
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run_until(lambda: READY_LINE in proc.stdout_text(),
                         max_instructions=5_000_000)
        init_trace = tracer.nudge_dump()
        client = HttpClient(kernel, LIGHTTPD_PORT)
        client.get("/")
        client.get("/missing.html")
        client.post("/echo", "abcd")
        serving = tracer.finish()
        report = init_only_blocks(init_trace, serving, LIGHTTPD_BINARY)
        assert report.removable_count > 0
        return kernel, proc, report

    def test_init_wipe_image_lints_clean(self):
        kernel, proc, report = self._init_profile()
        dynacut = DynaCut(kernel, lint_mode="always")
        out = dynacut.remove_init_code(
            proc.pid, LIGHTTPD_BINARY, list(report.init_only), wipe=True
        )
        assert out.lint is not None
        assert out.lint.ok, out.lint.summary()
        client = HttpClient(kernel, LIGHTTPD_PORT)
        assert client.get("/").status == 200

    def test_init_refine_auto_frontier(self):
        kernel, proc, report = self._init_profile()
        dynacut = DynaCut(kernel, lint_mode="always")
        out = dynacut.remove_init_code(
            proc.pid, LIGHTTPD_BINARY, list(report.init_only),
            wipe=True, refine=True,
        )
        assert out.refinement is not None
        assert not out.refinement.suspect      # auto-frontier: no suspects
        assert out.refinement.counts["provably_dead"] >= 1
        assert out.lint is not None and out.lint.ok, out.lint.summary()
        client = HttpClient(kernel, LIGHTTPD_PORT)
        assert client.get("/").status == 200
