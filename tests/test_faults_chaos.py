"""Chaos suite: every injection site × fault kind × 10 seeds.

The invariant under test is the paper's availability claim made
mechanical: *after any customize() outcome — commit, retry, or
rollback — the process tree is alive and serves the wanted workload,
and the image is never half-patched*.  Each case arms exactly one
seeded fault spec, runs a full disable-feature session (checkpoint →
rewrite → save → lint → restore), and checks the world afterwards.

The session recipe (VERIFY policy, all blocks, lint always on) is
chosen because it visits every injection site in one pipeline run.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.core import (
    BlockMode,
    CustomizationAborted,
    DynaCut,
    TraceDiff,
    TrapPolicy,
)
from repro.faults import (
    FaultError,
    FaultPlan,
    KNOWN_SITES,
    PermanentFault,
    TransientFault,
)
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import RedisClient
from repro.workloads.driver import SECOND_NS, TimelineEvent, run_request_timeline

SITES = sorted(KNOWN_SITES)
KINDS = ("transient", "permanent")
SEEDS = range(10)


def _fresh_world():
    kernel = Kernel()
    proc = stage_redis(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a", "EXISTS a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "SET", [wanted], [undesired]
    )
    dynacut = DynaCut(kernel, lint_mode="always")
    return {
        "kernel": kernel,
        "pid": proc.pid,
        "client": client,
        "feature": feature,
        "dynacut": dynacut,
    }


#: one staged world per (site, kind) group; invalidated whenever a case
#: commits a handler install, because rewriter.inject_library is only
#: reachable while the tree has no handler library yet
_WORLDS: dict[tuple[str, str], dict] = {}


def _world_for(site: str, kind: str) -> dict:
    key = (site, kind)
    if key not in _WORLDS:
        _WORLDS[key] = _fresh_world()
    return _WORLDS[key]


def _invalidate_if_needed(site: str, kind: str, committed: bool) -> None:
    if site == "rewriter.inject_library" and committed:
        del _WORLDS[(site, kind)]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("site", SITES)
def test_customize_survives_injected_fault(site, kind, seed):
    world = _world_for(site, kind)
    kernel = world["kernel"]
    dynacut = world["dynacut"]
    client = world["client"]
    feature = world["feature"]
    pid = world["pid"]

    proc = kernel.processes[pid]
    entry_offsets = [block.offset for block in feature.blocks]
    before = {
        offset: proc.memory.read_raw(offset, 1) for offset in entry_offsets
    }

    plan = FaultPlan(seed=seed).arm(
        site,
        kind,
        probability=0.9,
        times=1,
        torn=(site == "fs.write_file"),
    )
    committed = True
    try:
        with plan:
            report = dynacut.disable_feature(
                pid, feature, policy=TrapPolicy.VERIFY, mode=BlockMode.ALL
            )
    except CustomizationAborted as exc:
        committed = False
        report = exc.report

    # the recipe visits the armed site; otherwise the case proves nothing
    assert plan.calls.get(site, 0) > 0

    # invariant 1: the tree is alive and serves the wanted workload
    proc = dynacut.restored_process(pid)
    assert proc.alive
    assert client.ping()
    assert client.get("chaos-missing") is None

    # invariant 2: never half-patched — all blocks carry either their
    # pre-call bytes (rolled back) or the int3 patch (committed)
    after = {
        offset: proc.memory.read_raw(offset, 1) for offset in entry_offsets
    }
    if committed:
        assert all(byte == b"\xcc" for byte in after.values())
        assert report.outcome == "committed"
        assert not report.rolled_back
    else:
        assert after == before
        assert report.outcome == "rolled-back"
        assert report.rolled_back
        assert kind == "permanent"   # transients retry to success here

    # invariant 3: the injection log matches the armed plan
    assert plan.consistent_with_plan()
    for record in plan.log:
        assert record.site == site
        assert record.kind == kind
    assert len(plan.log) <= 1   # times=1 caps the spec

    _invalidate_if_needed(site, kind, committed)


def test_timeline_survives_faulted_customize():
    """Closed-loop workload straddling two faulted customize sessions.

    Reuses ``workloads/driver.py``: requests stream before, between,
    and after (a) a disable that commits on its second attempt after a
    transient dump fault and (b) a re-enable that rolls back on a
    permanent restore fault — and not one request fails.
    """
    world = _fresh_world()
    kernel = world["kernel"]
    dynacut = world["dynacut"]
    client = world["client"]
    feature = world["feature"]
    pid = world["pid"]
    client.set("hot", "1")
    reports = {}

    def faulted_disable():
        plan = FaultPlan(seed=7).arm(
            "checkpoint.dump_pages", "transient", on_call=1
        )
        with plan:
            reports["disable"] = dynacut.disable_feature(
                pid, feature, policy=TrapPolicy.VERIFY, mode=BlockMode.ALL
            )

    def faulted_enable():
        plan = FaultPlan(seed=8).arm("restore.memory", "permanent", on_call=1)
        with plan, pytest.raises(CustomizationAborted) as excinfo:
            dynacut.enable_feature(pid, feature)
        reports["enable"] = excinfo.value.report

    result = run_request_timeline(
        kernel,
        lambda: client.get("hot") == "1",
        duration_ns=4 * SECOND_NS,
        bucket_ns=SECOND_NS,
        events=[
            TimelineEvent(1 * SECOND_NS, "disable", faulted_disable),
            TimelineEvent(int(2.5 * SECOND_NS), "enable", faulted_enable),
        ],
    )

    assert [label for __, label in result.events_fired] == ["disable", "enable"]
    assert reports["disable"].outcome == "committed"
    assert reports["disable"].attempts == 2
    assert reports["enable"].rolled_back
    # availability: the wanted workload never missed a beat — every
    # request completed and every one-second bucket saw completions
    assert result.total_requests > 0
    assert result.failed_requests == 0
    assert result.min_bucket() > 0
    # the rolled-back re-enable left the feature blocked
    proc = dynacut.restored_process(pid)
    assert proc.alive
    assert proc.memory.read_raw(feature.blocks[0].offset, 1) == b"\xcc"


class TestFaultPlanApi:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan().arm("no.such.site", on_call=1)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(FaultError):
            FaultPlan().arm("image.save", probability=0.5, on_call=1)
        with pytest.raises(FaultError):
            FaultPlan().arm("image.save")

    def test_probability_bounds_checked(self):
        with pytest.raises(FaultError):
            FaultPlan().arm("image.save", probability=1.5)

    def test_on_call_is_one_based(self):
        with pytest.raises(FaultError):
            FaultPlan().arm("image.save", on_call=0)

    def test_torn_restricted_to_fs_writes(self):
        with pytest.raises(FaultError):
            FaultPlan().arm("image.save", on_call=1, torn=True)
        FaultPlan().arm("fs.write_file", on_call=1, torn=True)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan().arm("image.save", "byzantine", on_call=1)

    def test_nested_plans_rejected(self):
        with FaultPlan(seed=1):
            with pytest.raises(FaultError):
                FaultPlan(seed=2).__enter__()

    def test_sites_are_noops_without_a_plan(self):
        faults.trip("restore.memory")
        assert faults.check("image.save") is None

    def test_shielded_suppresses_injection(self):
        plan = FaultPlan().arm("image.save", probability=1.0, times=0)
        with plan:
            with faults.shielded():
                assert faults.check("image.save") is None
            with pytest.raises(TransientFault):
                faults.trip("image.save")
        assert plan.fired == 1

    def test_deterministic_replay_from_seed(self):
        def run(seed):
            plan = FaultPlan(seed=seed).arm(
                "fs.write_file", "permanent", probability=0.5, times=0,
                torn=True,
            )
            fired = []
            for index in range(20):
                fault = plan.check("fs.write_file", detail=f"f{index}")
                fired.append(
                    None if fault is None else (fault.call_index, fault.fraction)
                )
            return fired

        assert run(13) == run(13)
        assert run(13) != run(14)

    def test_fire_budget_respected(self):
        plan = FaultPlan().arm("image.save", probability=1.0, times=2)
        with plan:
            for __ in range(2):
                with pytest.raises(TransientFault):
                    faults.trip("image.save")
            faults.trip("image.save")   # spec exhausted: no fire
        assert plan.fired == 2
        assert plan.fired_at("image.save")[0].call_index == 1

    def test_kind_classes(self):
        assert issubclass(TransientFault, RuntimeError)
        assert issubclass(PermanentFault, RuntimeError)
        fault = PermanentFault("image.save", 3, "detail")
        assert fault.site == "image.save"
        assert fault.call_index == 3
        assert "permanent" in str(fault)
        assert fault.keep_bytes(100) == 0    # no torn fraction set
