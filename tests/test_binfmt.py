"""Tests for object modules, serde, the SELF format, and the linker."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.binfmt import (
    DEFAULT_EXEC_BASE,
    DynRelocType,
    ImageKind,
    LinkError,
    ObjectModule,
    PAGE_SIZE,
    PLT_STUB_SIZE,
    RelocType,
    SelfImage,
    link_executable,
    link_shared,
    load_self,
    page_align,
)
from repro.binfmt.serde import ByteReader, ByteWriter
from repro.isa import assemble


# ----------------------------------------------------------------------
# serde


class TestSerde:
    @given(
        st.lists(
            st.one_of(
                st.integers(0, 255).map(lambda v: ("u8", v)),
                st.integers(0, 2**32 - 1).map(lambda v: ("u32", v)),
                st.integers(0, 2**64 - 1).map(lambda v: ("u64", v)),
                st.integers(-(2**63), 2**63 - 1).map(lambda v: ("i64", v)),
                st.text(max_size=40).map(lambda v: ("string", v)),
                st.binary(max_size=64).map(lambda v: ("blob", v)),
            ),
            max_size=25,
        )
    )
    def test_writer_reader_roundtrip(self, fields):
        writer = ByteWriter()
        for kind, value in fields:
            getattr(writer, kind)(value)
        reader = ByteReader(writer.getvalue())
        for kind, value in fields:
            assert getattr(reader, kind)() == value
        assert reader.exhausted

    def test_truncated_read_raises(self):
        reader = ByteReader(b"\x01")
        with pytest.raises(ValueError):
            reader.u32()


# ----------------------------------------------------------------------
# object modules


class TestObjectModule:
    def test_append_returns_offset(self):
        module = ObjectModule("m.o")
        assert module.append("text", b"abc") == 0
        assert module.append("text", b"de") == 3

    def test_reserve_bss_alignment(self):
        module = ObjectModule("m.o")
        module.reserve_bss(3, align=1)
        offset = module.reserve_bss(8, align=8)
        assert offset == 8
        assert module.bss_size == 16

    def test_duplicate_symbol_rejected(self):
        module = ObjectModule("m.o")
        module.define("x", "text", 0)
        with pytest.raises(ValueError):
            module.define("x", "text", 4)

    def test_undefined_symbols(self):
        module = ObjectModule("m.o")
        module.append("text", b"\x00" * 8)
        module.define("local", "text", 0)
        module.relocate("text", 0, RelocType.PCREL32, "local")
        module.relocate("text", 4, RelocType.PCREL32, "external")
        assert module.undefined_symbols() == {"external"}

    def test_bss_has_no_bytes(self):
        module = ObjectModule("m.o")
        with pytest.raises(ValueError):
            module.section("bss")


# ----------------------------------------------------------------------
# SELF serialization


def _tiny_exec() -> SelfImage:
    module = assemble(
        ".global _start\n_start:\n  movi r0, 1\n  movi r1, 0\n  syscall\n", "t.o"
    )
    return link_executable([module], "tiny")


class TestSelfFormat:
    def test_serialize_roundtrip(self):
        image = _tiny_exec()
        restored = load_self(image.to_bytes())
        assert restored.name == image.name
        assert restored.kind == image.kind
        assert restored.entry == image.entry
        assert [s.name for s in restored.segments] == [
            s.name for s in image.segments
        ]
        for a, b in zip(restored.segments, image.segments):
            assert a.vaddr == b.vaddr and a.data == b.data and a.perms == b.perms
        assert restored.symbols.keys() == image.symbols.keys()

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            load_self(b"ELF!" + b"\x00" * 64)

    def test_read_bytes_across_segment(self):
        image = _tiny_exec()
        start, __ = image.text_range()
        raw = image.read_bytes(start, 10)
        assert raw[0] == 0x01  # movi opcode

    def test_page_align(self):
        assert page_align(0) == 0
        assert page_align(1) == PAGE_SIZE
        assert page_align(PAGE_SIZE) == PAGE_SIZE
        assert page_align(PAGE_SIZE + 1) == 2 * PAGE_SIZE

    def test_code_size_counts_text_and_plt(self):
        image = _tiny_exec()
        assert image.code_size() == len(image.segment("text").data)


# ----------------------------------------------------------------------
# linker


class TestLinker:
    def test_exec_base_and_entry(self):
        image = _tiny_exec()
        assert image.base == DEFAULT_EXEC_BASE
        assert image.entry == image.symbols["_start"].vaddr
        assert image.segment("text").vaddr == DEFAULT_EXEC_BASE

    def test_missing_start_rejected(self):
        module = assemble("main:\n  ret\n", "t.o")
        with pytest.raises(LinkError):
            link_executable([module], "nostart")

    def test_undefined_symbol_rejected(self):
        module = assemble(".global _start\n_start:\n  call missing\n", "t.o")
        with pytest.raises(LinkError):
            link_executable([module], "bad")

    def test_duplicate_globals_rejected(self):
        a = assemble(".global f\nf:\n  ret\n", "a.o")
        b = assemble(".global f\n.global _start\nf:\n_start:\n  ret\n", "b.o")
        with pytest.raises(LinkError):
            link_executable([a, b], "dup")

    def test_cross_module_call_resolved(self):
        a = assemble(".global _start\n_start:\n  call helper\n  movi r0, 1\n  syscall\n", "a.o")
        b = assemble(".global helper\nhelper:\n  ret\n", "b.o")
        image = link_executable([a, b], "two")
        # the call's rel32 must land exactly on helper
        text = image.segment("text").data
        call_site = image.symbols["_start"].vaddr - image.segment("text").vaddr
        rel = int.from_bytes(text[call_site + 1:call_site + 5], "little", signed=True)
        target = image.symbols["_start"].vaddr + 5 + rel
        assert target == image.symbols["helper"].vaddr

    def test_local_symbols_do_not_collide(self):
        a = assemble(".global fa\nfa:\n_Lx:\n  jmp _Lx\n", "a.o")
        b = assemble(
            ".global _start\n_start:\n_Lx:\n  jmp _Lx\n  call fa\n", "b.o"
        )
        image = link_executable([a, b], "locals")
        assert "fa" in image.symbols

    def test_plt_and_got_generated_for_imports(self, libc):
        module = assemble(
            ".global _start\n_start:\n  call strlen\n  movi r0, 1\n  syscall\n",
            "t.o",
        )
        image = link_executable([module], "uses_libc", libraries=[libc])
        assert "strlen" in image.plt_entries
        assert "strlen" in image.got_entries
        assert image.needed == ["libc.so"]
        stub = image.plt_entries["strlen"]
        plt_seg = image.segment("plt")
        assert plt_seg.vaddr <= stub < plt_seg.vaddr + len(plt_seg.data)
        # GOT slot has a GLOB_DAT dynamic reloc
        got_slot = image.got_entries["strlen"]
        assert any(
            r.vaddr == got_slot and r.type is DynRelocType.GLOB_DAT
            and r.symbol == "strlen"
            for r in image.dynamic_relocs
        )

    def test_plt_stub_size_constant(self, libc):
        module = assemble(
            ".global _start\n_start:\n  call strlen\n  call strcmp\n"
            "  movi r0, 1\n  syscall\n",
            "t.o",
        )
        image = link_executable([module], "two_imports", libraries=[libc])
        stubs = sorted(image.plt_entries.values())
        assert stubs[1] - stubs[0] == PLT_STUB_SIZE

    def test_shared_object_is_position_independent(self):
        module = assemble(
            ".global getval\ngetval:\n  movi r0, @value\n  ld64 r0, [r0]\n  ret\n"
            ".section data\n.global value\nvalue: .quad 7\n",
            "lib.o",
        )
        lib = link_shared([module], "libv.so")
        assert lib.kind is ImageKind.DYN
        assert lib.base == 0
        # the movi @value needs a RELATIVE dynamic reloc
        assert any(
            r.type is DynRelocType.RELATIVE for r in lib.dynamic_relocs
        )

    def test_segment_permissions(self):
        module = assemble(
            ".global _start\n_start:\n  movi r1, @w\n  movi r0, 1\n  syscall\n"
            '.section rodata\nmsg: .asciiz "x"\n'
            ".section data\n.global w\nw: .quad 1\n"
            ".section bss\nb: .space 64\n",
            "t.o",
        )
        image = link_executable([module], "perm")
        perms = {seg.name: seg.perms for seg in image.segments}
        assert perms["text"] == "r-x"
        assert perms["rodata"] == "r--"
        assert perms["data"] == "rw-"
        assert perms["bss"] == "rw-"

    def test_sections_page_aligned(self):
        image = _tiny_exec()
        for seg in image.segments:
            assert seg.vaddr % PAGE_SIZE == 0
