"""Frontend-tier routing and the no-lost-requests accounting identity.

The frontend is deliberately testable without booting kernels: it only
needs hosts with an ``index``, a ``name``, and a clock, plus the
``request(host)`` callback.  Stub hosts keep these tests fast and make
the failure injection exact; the full-stack path (real kernels, real
kvstore fleets) is covered in ``test_mesh_controller.py``.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.kernel.balancer import NoBackendAvailable
from repro.mesh import Frontend, HashRing, MeshError
from repro.telemetry import TelemetryHub, recording


class StubClock:
    clock_ns = 0

    @property
    def config(self):  # pragma: no cover — driver compat only
        return None


class StubHost:
    """Just enough host for the frontend: an index, a name, a clock."""

    def __init__(self, index):
        self.index = index
        self.name = f"host-{index}"
        self.kernel = StubClock()
        self.serving = True

    def serve(self, _host=None):
        if not self.serving:
            raise NoBackendAvailable(
                f"connection refused: no backend in service behind {self.name}"
            )
        return True


def make_frontend(n=2, mode="spread", budget=1, replicas=8):
    hosts = [StubHost(index) for index in range(n)]
    return hosts, Frontend(
        hosts, mode=mode, ring_replicas=replicas, host_failover_budget=budget
    )


class TestConstruction:
    def test_unknown_mode_rejected(self):
        with pytest.raises(MeshError, match="routing mode"):
            make_frontend(mode="anycast")

    def test_no_hosts_rejected(self):
        with pytest.raises(MeshError, match="at least one host"):
            Frontend([])

    def test_hash_dispatch_requires_key(self):
        __, frontend = make_frontend(mode="hash")
        with pytest.raises(MeshError, match="key"):
            frontend.dispatch(lambda host: True)


class TestSpreadRouting:
    def test_round_robin_balances(self):
        hosts, frontend = make_frontend(n=2)
        for __ in range(10):
            assert frontend.dispatch(lambda host: host.serve())
        stats = frontend.stats()
        assert stats["dispatched"] == {"host-0": 5, "host-1": 5}
        assert stats["issued"] == stats["served"] == 10
        assert stats["accounted"]

    def test_dead_host_fails_over_and_is_marked_down(self):
        hosts, frontend = make_frontend(n=2)
        hosts[0].serving = False
        results = [frontend.dispatch(lambda host: host.serve()) for __ in range(6)]
        assert all(results)
        stats = frontend.stats()
        assert stats["down_hosts"] == [0]
        # at least the bounce-discovering request is a failover; the
        # rest route cleanly to the survivor
        assert stats["failed_over"] >= 1
        assert stats["served"] + stats["failed_over"] == 6
        assert stats["shed"] == 0
        assert stats["accounted"]

    def test_all_hosts_down_sheds_with_accounting(self):
        hosts, frontend = make_frontend(n=2, budget=3)
        for host in hosts:
            host.serving = False
        for __ in range(4):
            with pytest.raises(NoBackendAvailable, match="mesh failover budget"):
                frontend.dispatch(lambda host: host.serve())
        stats = frontend.stats()
        assert stats["shed"] == 4
        assert stats["served"] == stats["failed_over"] == 0
        assert stats["accounted"]

    def test_recovered_host_rejoins_after_mark_up(self):
        hosts, frontend = make_frontend(n=2)
        hosts[0].serving = False
        for __ in range(4):
            frontend.dispatch(lambda host: host.serve())
        assert frontend.down_hosts == [0]
        hosts[0].serving = True
        frontend.mark_host_up(0)
        for __ in range(4):
            frontend.dispatch(lambda host: host.serve())
        assert frontend.down_hosts == []
        assert frontend.stats()["dispatched"]["host-0"] >= 1

    def test_zero_budget_sheds_on_first_bounce(self):
        hosts, frontend = make_frontend(n=2, budget=0)
        hosts[0].serving = False
        shed_before = 0
        outcomes = []
        for __ in range(4):
            try:
                frontend.dispatch(lambda host: host.serve())
                outcomes.append("served")
            except NoBackendAvailable:
                outcomes.append("shed")
        # exactly one request pays for discovering the dead host
        assert outcomes.count("shed") == 1
        assert frontend.stats()["accounted"]
        assert shed_before == 0


class TestApplicationErrors:
    def test_app_error_is_accounted_as_delivered(self):
        # an exception out of the request itself (not routing) must not
        # leak an unaccounted request
        hosts, frontend = make_frontend(n=2)

        def broken(host):
            raise ValueError("app-level explosion")

        with pytest.raises(ValueError):
            frontend.dispatch(broken)
        stats = frontend.stats()
        assert stats["issued"] == stats["served"] == 1
        assert stats["accounted"]


class TestHashRouting:
    def test_keyed_requests_land_on_owning_shard(self):
        hosts, frontend = make_frontend(n=4, mode="hash", replicas=16)
        ring = HashRing(16, shards=[0, 1, 2, 3])
        for index in range(24):
            key = f"key-{index}"
            landed = []
            frontend.dispatch(lambda host: landed.append(host.index), key=key)
            assert landed == [ring.shard_for(key)]

    def test_down_host_arc_fails_over_to_ring_successor(self):
        hosts, frontend = make_frontend(n=3, mode="hash", replicas=16)
        hosts[1].serving = False
        ring = HashRing(16, shards=[0, 1, 2])
        owned_by_1 = [f"k{i}" for i in range(60) if ring.shard_for(f"k{i}") == 1]
        assert owned_by_1, "sample keyspace never hit shard 1?"
        for key in owned_by_1:
            landed = []

            def request(host, _landed=landed):
                host.serve()
                _landed.append(host.index)
                return True

            assert frontend.dispatch(request, key=key)
            # the arc moves exactly where a topology change would put it
            assert landed[-1] == ring.shard_for(key, down={1})
        # keys not owned by the dead shard never moved
        for index in range(60):
            key = f"k{index}"
            if ring.shard_for(key) == 1:
                continue
            landed = []
            frontend.dispatch(
                lambda host, _landed=landed: _landed.append(host.index) or True,
                key=key,
            )
            assert landed == [ring.shard_for(key)]
        assert frontend.stats()["accounted"]


class TestShedAttribution:
    def test_shed_counter_carries_primary_shard_label(self):
        # shed requests keep their per-shard identity: the counter is
        # attributed to the shard that would have served the key
        hosts, frontend = make_frontend(n=2, mode="hash", budget=0, replicas=8)
        ring = HashRing(8, shards=[0, 1])
        key = next(f"k{i}" for i in range(20) if ring.shard_for(f"k{i}") == 0)
        hosts[0].serving = False
        hosts[1].serving = False
        hub = TelemetryHub()
        with recording(hub):
            with pytest.raises(NoBackendAvailable, match="mesh failover budget"):
                frontend.dispatch(lambda host: host.serve(), key=key)
        assert hub.registry.counters_by_label("mesh_shed_total", "shard") == {
            "host-0": 1
        }

    def test_shed_before_any_candidate_is_labeled_none(self):
        # every host already marked down: no candidate was ever picked,
        # so there is no primary shard to attribute the shed to
        hosts, frontend = make_frontend(n=2)
        frontend.mark_host_down(0)
        frontend.mark_host_down(1)
        hub = TelemetryHub()
        with recording(hub):
            with pytest.raises(NoBackendAvailable):
                frontend.dispatch(lambda host: host.serve())
        assert hub.registry.counters_by_label("mesh_shed_total", "shard") == {
            "none": 1
        }


class TestUnreachableFaultSite:
    def test_dropped_hop_retries_without_marking_down(self):
        hosts, frontend = make_frontend(n=2, budget=1)
        plan = FaultPlan(seed=3).arm(
            "mesh.host_unreachable", "transient", on_call=1, times=1
        )
        with plan:
            for __ in range(4):
                assert frontend.dispatch(lambda host: host.serve())
        assert plan.fired == 1
        stats = frontend.stats()
        # the dropped hop failed over but the host was never marked down
        assert stats["failed_over"] == 1
        assert stats["down_hosts"] == []
        assert stats["accounted"]
