"""Tests for the SPEC-like benchmark suite."""

from __future__ import annotations

import pytest

from repro.apps import benchmark_names, get_benchmark, stage_spec
from repro.apps.spec import INIT_DONE_LINE, RESULT_PREFIX
from repro.analysis import build_cfg
from repro.core import DynaCut, init_only_blocks
from repro.kernel import Kernel
from repro.tracing import BlockTracer

ALL_NAMES = benchmark_names()


def _result_of(proc) -> int:
    for line in proc.stdout_text().splitlines():
        if line.startswith(RESULT_PREFIX):
            return int(line[len(RESULT_PREFIX):])
    raise AssertionError(f"no result line in {proc.stdout_text()!r}")


class TestSuiteBasics:
    def test_seven_benchmarks_registered(self):
        assert len(ALL_NAMES) == 7
        assert "600.perlbench_s" in ALL_NAMES
        assert "605.mcf_s" in ALL_NAMES

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("999.nothing")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_runs_to_completion_with_result(self, name):
        kernel = Kernel()
        proc = stage_spec(kernel, name, iterations=1)
        assert INIT_DONE_LINE in proc.stdout_text()
        kernel.run_until(lambda: not proc.alive, max_instructions=30_000_000)
        assert proc.exit_code == 0
        _result_of(proc)  # raises if absent

    @pytest.mark.parametrize("name", ["605.mcf_s", "641.leela_s"])
    def test_deterministic_results(self, name):
        results = []
        for __ in range(2):
            kernel = Kernel()
            proc = stage_spec(kernel, name, iterations=2)
            kernel.run_until(lambda: not proc.alive, max_instructions=30_000_000)
            results.append(_result_of(proc))
        assert results[0] == results[1]

    def test_iterations_scale_work(self):
        counts = []
        for iterations in (1, 3):
            kernel = Kernel()
            proc = stage_spec(kernel, "605.mcf_s", iterations=iterations)
            kernel.run_until(lambda: not proc.alive, max_instructions=30_000_000)
            counts.append(proc.instructions_retired)
        assert counts[1] > counts[0] * 1.5

    def test_perlbench_has_biggest_init_phase(self):
        """The suite preserves the paper's shape: perlbench is the most
        init-heavy benchmark, mcf the smallest binary."""
        init_counts = {}
        sizes = {}
        for name in ("600.perlbench_s", "605.mcf_s", "625.x264_s"):
            kernel = Kernel()
            proc = stage_spec(kernel, name, iterations=1, run_to_init=False)
            tracer = BlockTracer(kernel, proc).attach()
            kernel.run_until(
                lambda: INIT_DONE_LINE in proc.stdout_text(),
                max_instructions=10_000_000,
            )
            init_trace = tracer.nudge_dump(quiesce=False)
            kernel.run_until(lambda: not proc.alive, max_instructions=30_000_000)
            rest = tracer.finish(quiesce=False)
            bench = get_benchmark(name)
            report = init_only_blocks(init_trace, rest, bench.binary)
            init_counts[name] = report.removable_count
            sizes[name] = kernel.binaries[bench.binary].code_size()
        assert init_counts["600.perlbench_s"] == max(init_counts.values())
        assert sizes["605.mcf_s"] == min(sizes.values())


class TestSpecWithDynaCut:
    def test_init_removal_preserves_result(self):
        """The headline correctness property: removing init-only code
        mid-run must not change the computation's output.

        Profiling follows the paper's offline workflow: a *complete*
        profiling run produces the init/serving split (a partial
        serving sample would misclassify exit-phase code such as the
        output PLT entries — the §3.2.3 over-removal hazard), and the
        removal is applied to a separate live instance.
        """
        name = "623.xalancbmk_s"
        bench = get_benchmark(name)
        iterations = 12

        # profiling run (to completion) + reference result
        kernel = Kernel()
        proc = stage_spec(kernel, name, iterations=iterations, run_to_init=False)
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run_until(
            lambda: INIT_DONE_LINE in proc.stdout_text(),
            max_instructions=10_000_000,
        )
        init_trace = tracer.nudge_dump(quiesce=False)
        kernel.run_until(lambda: not proc.alive, max_instructions=60_000_000)
        serving = tracer.finish(quiesce=False)
        expected = _result_of(proc)
        report = init_only_blocks(init_trace, serving, bench.binary)
        assert report.removable_count > 0

        # production run: rewrite mid-execution using the offline profile
        kernel = Kernel()
        proc = stage_spec(kernel, name, iterations=iterations)  # at init-done
        dynacut = DynaCut(kernel)
        dynacut.remove_init_code(
            proc.pid, bench.binary, list(report.init_only), wipe=True
        )
        proc = dynacut.restored_process(proc.pid)
        kernel.run_until(lambda: not proc.alive, max_instructions=60_000_000)
        assert proc.term_signal is None
        assert _result_of(proc) == expected

    def test_static_blocks_exceed_executed(self):
        name = "631.deepsjeng_s"
        bench = get_benchmark(name)
        kernel = Kernel()
        proc = stage_spec(kernel, name, iterations=1, run_to_init=False)
        tracer = BlockTracer(kernel, proc).attach()
        kernel.run_until(lambda: not proc.alive, max_instructions=30_000_000)
        trace = tracer.finish(quiesce=False)
        executed = len(trace.module_blocks(bench.binary))
        total = build_cfg(kernel.binaries[bench.binary]).block_count
        assert total > executed  # unused (gray) blocks exist
