"""Mutation tests for the DynaLint image linter.

Each test builds a *legitimately* rewritten checkpoint (entry-int3
blocking plus a verify-policy trap handler — the quickstart shape),
asserts it lints clean, seeds one deliberate corruption, and asserts
the linter reports exactly the expected diagnostic code(s).
"""

from __future__ import annotations

import pytest

from repro.analysis import build_cfg
from repro.analysis.lint import lint_checkpoint
from repro.apps import redis_image, stage_redis
from repro.core.rewriter import ImageRewriter
from repro.core.sighandler import POLICY_VERIFY, build_handler_library
from repro.criu.checkpoint import checkpoint_tree
from repro.criu.images import VmaEntry
from repro.isa.disassembler import disassemble_range
from repro.kernel import Kernel
from repro.kernel.memory import PAGE_SIZE
from repro.kernel.signals import Signal
from repro.tracing import BlockRecord


class Scenario:
    """A rewritten-but-not-restored checkpoint plus handles to poke it."""

    def __init__(self):
        self.kernel = Kernel()
        proc = stage_redis(self.kernel)
        self.binary = redis_image()
        self.cfg = build_cfg(self.binary)
        self.text = next(s for s in self.binary.segments if s.name == "text")
        self.checkpoint = checkpoint_tree(
            self.kernel, proc.pid, image_dir=None, dump_exec_pages=True
        )
        self.rewriter = ImageRewriter(self.kernel, self.checkpoint)
        self.image = self.checkpoint.root()
        self.base = self.rewriter.module_base(self.image, self.binary.name)

        self.blocked = self._function_blocks(0)
        self.rewriter.block_entry_int3(self.binary.name, self.blocked)
        orig = [
            (self.base + b.offset, self.binary.read_bytes(b.offset, 1)[0])
            for b in self.blocked
        ]
        self.rewriter.install_trap_handler(POLICY_VERIFY, orig_entries=orig)

    def _function_blocks(self, index: int) -> list[BlockRecord]:
        """Blocks of the ``index``-th function with >= 2 decent blocks."""
        funcs = sorted(
            sym.vaddr for sym in self.binary.functions().values()
        ) + [self.text.vaddr + len(self.text.data)]
        found = 0
        for start, end in zip(funcs, funcs[1:]):
            blocks = [
                BlockRecord(self.binary.name, b.start, b.size)
                for b in self.cfg.blocks
                if start <= b.start < end
            ]
            if len(blocks) >= 2 and all(b.size >= 2 for b in blocks):
                if found == index:
                    return blocks
                found += 1
        raise AssertionError("fixture binary has too few suitable functions")

    # ------------------------------------------------------------------

    def lint(self):
        return lint_checkpoint(self.kernel, self.checkpoint)

    def injected_vma(self, segname: str) -> VmaEntry:
        tag = f"dynacut:{segname}"
        return next(v for v in self.image.mm.vmas if v.tag == tag)

    def padding_offset(self) -> int:
        """A text byte outside every recovered block (inter-function pad)."""
        covered = set()
        for block in self.cfg.blocks:
            covered.update(range(block.start, block.end))
        text_end = self.text.vaddr + len(self.text.data)
        for offset in range(self.text.vaddr, text_end):
            inside = offset - self.text.vaddr
            if offset not in covered and self.text.data[inside] != 0xCC:
                return offset
        raise AssertionError("no padding byte found")

    def multi_insn_block(self) -> tuple[BlockRecord, int]:
        """(block, first-instruction size) from an untouched function."""
        blocked_starts = {b.offset for b in self.blocked}
        for block in self.cfg.blocks:
            if block.start in blocked_starts:
                continue
            decoded, __ = disassemble_range(
                self.text.data, block.start, block.end, base=self.text.vaddr
            )
            if len(decoded) >= 2 and decoded[0].end - decoded[0].address >= 2:
                record = BlockRecord(
                    self.binary.name, block.start, block.size
                )
                return record, decoded[0].end - decoded[0].address
        raise AssertionError("no multi-instruction block found")

    def reloc_free_offset(self) -> int:
        """Start of a kept instruction not under a dynamic relocation."""
        reloc = set()
        for r in self.binary.dynamic_relocs:
            reloc.update(range(r.vaddr, r.vaddr + 8))
        blocked_starts = {b.offset for b in self.blocked}
        for block in self.cfg.blocks:
            if block.start in blocked_starts:
                continue
            if all(o not in reloc for o in range(block.start, block.start + 1)):
                return block.start
        raise AssertionError("no reloc-free byte found")

    def sigtrap_action(self):
        sig = int(Signal.SIGTRAP)
        return next(a for a in self.image.core.sigactions if a.signal == sig)


@pytest.fixture()
def scenario():
    scenario = Scenario()
    assert scenario.lint().ok, scenario.lint().summary()
    return scenario


class TestCleanImages:
    def test_entry_int3_plus_verify_is_clean(self, scenario):
        report = scenario.lint()
        assert report.ok
        assert report.codes == set()

    def test_full_wipe_is_clean(self, scenario):
        scenario.rewriter.wipe_blocks(scenario.binary.name, scenario.blocked)
        assert scenario.lint().ok

    def test_rerandomized_libc_is_clean(self, scenario):
        scenario.rewriter.rerandomize_library("libc.so")
        report = scenario.lint()
        assert report.ok, report.summary()

    def test_restore_blocks_is_clean(self, scenario):
        scenario.rewriter.restore_blocks(scenario.binary.name, scenario.blocked)
        assert scenario.lint().ok


class TestCodePatchMutations:
    def test_dl101_mid_instruction_patch(self, scenario):
        pad = scenario.padding_offset()
        scenario.image.write_memory(scenario.base + pad, b"\xcc")
        report = scenario.lint()
        assert report.codes == {"DL101"}
        assert report.by_code("DL101")[0].address == scenario.base + pad

    def test_dl102_kept_instruction_decodes_into_wiped_bytes(self, scenario):
        block, first_size = scenario.multi_insn_block()
        scenario.rewriter.wipe_blocks(scenario.binary.name, [block])
        # un-wipe the first byte: the kept first instruction now decodes
        # straight into int3 bytes (its tail is still wiped)
        pristine = scenario.binary.read_bytes(block.offset, 1)
        scenario.image.write_memory(scenario.base + block.offset, pristine)
        report = scenario.lint()
        # the torn wipe is doubly wrong: the surviving patch run starts
        # mid-instruction (DL101) and the kept instruction is torn (DL102)
        assert report.codes == {"DL101", "DL102"}
        assert report.by_code("DL102")[0].address == scenario.base + block.offset

    def test_dl103_foreign_byte_in_text(self, scenario):
        offset = scenario.reloc_free_offset()
        pristine = scenario.binary.read_bytes(offset, 1)[0]
        foreign = next(
            b for b in (0x90, 0x91) if b not in (pristine, 0xCC)
        )
        scenario.image.write_memory(scenario.base + offset, bytes([foreign]))
        report = scenario.lint()
        assert report.codes == {"DL103"}
        assert report.by_code("DL103")[0].address == scenario.base + offset


class TestVmaMutations:
    def test_dl201_overlapping_injected_vma(self, scenario):
        text_vma = next(
            v for v in scenario.image.mm.vmas
            if v.file_path == scenario.binary.name and v.executable
        )
        evil = VmaEntry(
            text_vma.start, text_vma.start + PAGE_SIZE, "r-x",
            tag="dynacut:evil",
        )
        scenario.image.mm.vmas.append(evil)
        report = scenario.lint()
        assert report.codes == {"DL201"}
        assert report.by_code("DL201")[0].address == evil.start

    def test_dl202_wrong_injected_perms(self, scenario):
        data_vma = scenario.injected_vma("data")
        data_vma.perms = "r-x"
        report = scenario.lint()
        assert report.codes == {"DL202"}

    def test_dl203_injected_page_not_dumped(self, scenario):
        data_vma = scenario.injected_vma("data")
        dropped = scenario.image.drop_range(
            data_vma.start, data_vma.start + PAGE_SIZE
        )
        assert dropped >= 1
        report = scenario.lint()
        assert report.codes == {"DL203"}
        assert report.by_code("DL203")[0].address == data_vma.start


class TestHandlerMutations:
    def test_dl301_corrupt_got_word(self, scenario):
        library = build_handler_library(
            scenario.kernel.binaries["libc.so"]
        )
        text_vaddr = next(
            s.vaddr for s in library.segments if s.name == "text"
        )
        handler_base = scenario.injected_vma("text").start - text_vaddr
        reloc = next(
            r for r in library.dynamic_relocs if r.symbol
        )
        site = handler_base + reloc.vaddr
        scenario.image.write_memory(
            site, (0x7777_0000_0000).to_bytes(8, "little")
        )
        report = scenario.lint()
        assert report.codes == {"DL301"}
        assert report.by_code("DL301")[0].address == site

    def test_dl401_handler_not_executable(self, scenario):
        action = scenario.sigtrap_action()
        action.handler = scenario.injected_vma("data").start
        report = scenario.lint()
        assert report.codes == {"DL401"}

    def test_dl402_restorer_not_executable(self, scenario):
        action = scenario.sigtrap_action()
        action.restorer = scenario.injected_vma("data").start + 8
        report = scenario.lint()
        assert report.codes == {"DL402"}

    def test_dl401_handler_unmapped(self, scenario):
        action = scenario.sigtrap_action()
        action.handler = 0x7777_0000_0000
        report = scenario.lint()
        assert report.codes == {"DL401"}
