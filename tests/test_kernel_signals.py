"""Signal semantics tests: delivery, sigframes, sigreturn, int3 traps.

These run real guest programs because signal behaviour is exactly what
DynaCut's trap policies build on.
"""

from __future__ import annotations

from repro.kernel import Signal

from .helpers import run_minic, run_image, build_minic


class TestDefaultDispositions:
    def test_sigsegv_kills_by_default(self):
        __, proc = run_minic("func main() { return load8(0x10); }")
        assert not proc.alive
        assert proc.term_signal is Signal.SIGSEGV

    def test_sigill_on_wiped_code(self):
        # jump into a data region via a function pointer
        __, proc = run_minic(
            "var blob[16];\nvar fp;\n"
            "func main() { fp = blob; var f = fp; return f(); }"
        )
        assert proc.term_signal in (Signal.SIGSEGV,)  # data is not executable

    def test_int3_kills_without_handler(self):
        __, proc = run_minic('func main() { asm("int3"); return 0; }')
        assert not proc.alive
        assert proc.term_signal is Signal.SIGTRAP

    def test_sigfpe_on_division_by_zero(self):
        __, proc = run_minic("func main() { var z = 0; return 7 / z; }")
        assert proc.term_signal is Signal.SIGFPE


_HANDLER_PROG = r"""
extern func sigaction;
extern func print;
extern func println;
extern func exit;

var trapped = 0;

func on_trap(sig, frame, fault) {
    trapped = trapped + 1;
    println("trap!");
    // saved rip already points past the int3: execution just continues
    return 0;
}

func main() {
    sigaction(5, on_trap);       // SIGTRAP
    asm("int3");
    println("survived");
    if (trapped == 1) { return 42; }
    return 1;
}
"""


class TestHandlers:
    def test_sigtrap_handler_continues_execution(self):
        __, proc = run_minic(_HANDLER_PROG)
        assert proc.exit_code == 42
        assert "trap!" in proc.stdout_text()
        assert "survived" in proc.stdout_text()

    def test_handler_receives_fault_address(self):
        source = r"""
extern func sigaction;
extern func print_num;
var addr = 0;
func on_trap(sig, frame, fault) { addr = fault; return 0; }
func main() {
    sigaction(5, on_trap);
    asm("int3");
    print_num(addr);
    if (addr > 0x400000) { return 1; }
    return 0;
}
"""
        __, proc = run_minic(source)
        assert proc.exit_code == 1

    def test_handler_can_rewrite_saved_rip(self):
        # handler bumps saved rip by the size of a movi (10 bytes),
        # skipping the instruction after the trap
        source = r"""
extern func sigaction;
func on_trap(sig, frame, fault) {
    store64(frame, load64(frame) + 10);
    return 0;
}
func main() {
    sigaction(5, on_trap);
    var r = 1;
    asm("int3");
    asm("movi r0, 9");
    asm("st64 [fp-8], r0");   // skipped? no - only the movi is skipped
    return r;
}
"""
        __, proc = run_minic(source)
        # the movi r0,9 was skipped, so the st64 stores the *old* r0;
        # either way the program must exit cleanly
        assert proc.term_signal is None
        assert not proc.alive

    def test_nested_signal_while_in_handler_is_queued(self):
        source = r"""
extern func sigaction;
var count = 0;
func on_trap(sig, frame, fault) {
    count = count + 1;
    return 0;
}
func main() {
    sigaction(5, on_trap);
    asm("int3");
    asm("int3");
    return count;
}
"""
        __, proc = run_minic(source)
        assert proc.exit_code == 2

    def test_kill_delivers_sigterm(self):
        source = "func main() { while (1) { } return 0; }"
        image = build_minic(source, "spinner")
        kernel, proc = run_image(image, max_instructions=2_000)
        assert proc.alive
        kernel.kill_process(proc.pid, Signal.SIGTERM)
        kernel.run(max_instructions=1_000)
        assert not proc.alive
        assert proc.term_signal is Signal.SIGTERM

    def test_sigkill_cannot_be_caught(self):
        source = r"""
extern func sigaction;
func on_sig(sig, frame, fault) { return 0; }
func main() {
    sigaction(9, on_sig);   // should be refused
    while (1) { }
    return 0;
}
"""
        image = build_minic(source, "unkillable")
        kernel, proc = run_image(image, max_instructions=5_000)
        assert proc.alive
        kernel.kill_process(proc.pid, Signal.SIGKILL)
        kernel.run(max_instructions=1_000)
        assert not proc.alive
        assert proc.term_signal is Signal.SIGKILL
