"""Smoke tests: the runnable examples must keep working end to end.

Only the quicker examples run here (the slower two exercise code paths
already covered by `tests/test_attacks.py`).
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> None:
    path = EXAMPLES / name
    assert path.exists(), path
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv


@pytest.mark.parametrize(
    "name",
    ["quickstart.py", "webdav_lockdown.py", "automatic_hardening.py"],
)
def test_example_runs_clean(name, capsys):
    _run(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
    assert "Traceback" not in out
