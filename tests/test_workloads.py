"""Tests for the host-side clients and the throughput-timeline driver."""

from __future__ import annotations

import pytest

from repro.apps import REDIS_PORT, stage_redis
from repro.workloads import (
    HttpError,
    RedisClient,
    RedisError,
    SECOND_NS,
    TimelineEvent,
    run_request_timeline,
)


class TestHttpClient:
    def test_parses_status_and_headers(self, lighttpd_server):
        __, __, client = lighttpd_server
        response = client.get("/")
        assert response.status == 200
        assert response.reason == "OK"
        assert response.ok
        assert "Content-Length" in response.headers

    def test_error_statuses_not_ok(self, lighttpd_server):
        __, __, client = lighttpd_server
        assert not client.get("/missing").ok

    def test_raw_request_passthrough(self, lighttpd_server):
        __, __, client = lighttpd_server
        raw = client.raw_request("HEAD / HTTP/1.0\r\n\r\n")
        assert raw.startswith(b"HTTP/1.0 200")

    def test_empty_reply_raises(self):
        with pytest.raises(HttpError):
            from repro.workloads.http_client import HttpClient

            HttpClient._parse(b"")


class TestRedisClientEdges:
    def test_reconnects_after_peer_close(self, redis_server):
        kernel, proc, client = redis_server
        client.ping()
        client._sock.close()
        client._sock = None
        assert client.ping()

    def test_error_reply_raises_typed(self, redis_server):
        __, __, client = redis_server
        with pytest.raises(RedisError):
            client.incr("k") if client.set("k", "x") and False else None
            client._int(client.command("GET missing"))

    def test_dead_server_raises(self, redis_server):
        from repro.kernel import NetworkError

        kernel, proc, client = redis_server
        client.command("SHUTDOWN")
        kernel.run_until(lambda: not proc.alive)
        # the old connection reads EOF / reconnect is refused
        with pytest.raises((RedisError, ConnectionError, NetworkError)):
            client.ping()
            client.ping()


class TestTimelineDriver:
    def test_buckets_cover_duration(self, redis_server):
        kernel, proc, client = redis_server
        client.set("hot", "1")

        def one_request() -> bool:
            return client.get("hot") == "1"

        result = run_request_timeline(
            kernel, one_request, duration_ns=3 * SECOND_NS,
            bucket_ns=SECOND_NS,
        )
        assert len(result.points) == 3
        assert result.total_requests == sum(p.completed for p in result.points)
        assert result.failed_requests == 0
        assert all(p.completed > 0 for p in result.points)

    def test_events_fire_in_order(self, redis_server):
        kernel, proc, client = redis_server
        client.set("hot", "1")
        fired = []
        events = [
            TimelineEvent(1 * SECOND_NS, "first", lambda: fired.append("a")),
            TimelineEvent(2 * SECOND_NS, "second", lambda: fired.append("b")),
        ]
        result = run_request_timeline(
            kernel, lambda: client.get("hot") == "1",
            duration_ns=3 * SECOND_NS, events=events,
        )
        assert fired == ["a", "b"]
        assert [label for __, label in result.events_fired] == ["first", "second"]

    def test_throughput_series_scaling(self, redis_server):
        kernel, proc, client = redis_server
        client.set("hot", "1")
        result = run_request_timeline(
            kernel, lambda: client.get("hot") == "1",
            duration_ns=2 * SECOND_NS, bucket_ns=SECOND_NS // 2,
        )
        series = result.throughput_series(SECOND_NS // 2)
        assert len(series) == 4
        # requests/second = bucket count * 2 for half-second buckets
        assert series[0][1] == result.points[0].completed * 2


class TestTimelineErrorPaths:
    """The driver against a backend that is mid-customization: drained
    from its balancer pool or with its listener gone entirely."""

    def test_connection_refused_is_tolerated_and_logged(self, redis_server):
        kernel, proc, client = redis_server
        client.set("hot", "1")

        def fail_listener() -> None:
            kernel.net.release_port(REDIS_PORT)   # listener vanishes
            client.close()                        # force a reconnect

        result = run_request_timeline(
            kernel, lambda: client.get("hot") == "1",
            duration_ns=3 * SECOND_NS,
            events=[TimelineEvent(1 * SECOND_NS, "down", fail_listener)],
            max_requests=2000,
        )
        # the run finished: refused connects became failed requests,
        # not an exception out of the driver, and not an infinite loop
        assert result.failed_requests > 0
        assert result.errors
        assert result.failed_requests == len(result.errors)
        assert result.total_requests == (
            sum(p.completed for p in result.points) + result.failed_requests
        )
        offset, text = result.errors[0]
        assert offset >= 1 * SECOND_NS
        assert "refused" in text

    def test_drained_balancer_pool_shows_dip_not_crash(self, redis_server):
        kernel, proc, client = redis_server
        client.set("hot", "1")
        pool = kernel.net.register_frontend(6378, backends=[REDIS_PORT])
        from repro.workloads import RedisClient

        balanced = RedisClient(kernel, 6378)

        def drain() -> None:
            balanced.close()                      # no connection reuse
            pool.drain(REDIS_PORT)

        def rejoin() -> None:
            pool.rejoin(REDIS_PORT)

        # a refused connect only advances the clock by one syscall cost,
        # so keep the outage window short enough to cross on errors alone
        outage_ns = 100 * kernel.config.syscall_cost_ns
        result = run_request_timeline(
            kernel, lambda: balanced.get("hot") == "1",
            duration_ns=3 * SECOND_NS,
            events=[
                TimelineEvent(1 * SECOND_NS, "drain", drain),
                TimelineEvent(1 * SECOND_NS + outage_ns, "rejoin", rejoin),
            ],
            max_requests=5000,
        )
        assert result.failed_requests > 0
        assert any("no backend in service" in text for __, text in result.errors)
        # service recovered after the rejoin: the final bucket completed work
        assert result.points[-1].completed > 0

    def test_tolerate_errors_false_reraises(self, redis_server):
        kernel, proc, client = redis_server
        kernel.net.release_port(REDIS_PORT)
        client.close()
        with pytest.raises(Exception):
            run_request_timeline(
                kernel, lambda: client.get("hot") == "1",
                duration_ns=1 * SECOND_NS, tolerate_errors=False,
            )
