#!/usr/bin/env python3
"""Fully automatic post-initialization hardening (§5 extensions).

No human in the loop: the transition detector watches the server's
syscalls and fires at the listen→poll boundary, the profiler splits
coverage there, and a single rewrite then

1. wipes the initialization-only code,
2. installs a seccomp-style syscall allow-list derived from the
   serving-phase trace (fork/execve/open are gone),

after which the server keeps serving — but an attacker who hijacks it
can neither reuse the init code nor leave the serving syscall set.

Run:  python examples/automatic_hardening.py
"""

from repro import DynaCut, Kernel
from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.core import (
    autodetect_init_phase,
    init_only_blocks,
    serving_allowlist,
    specialization_report,
)
from repro.kernel import Signal, Sys
from repro.workloads import RedisClient


def main() -> None:
    kernel = Kernel()
    server = stage_redis(kernel, run_to_ready=False)

    # 1. automatic transition detection — no ready-line watching
    tracer, init_trace = autodetect_init_phase(kernel, server)
    print("transition detected automatically at the listen→poll boundary")

    # 2. profile the serving phase with a representative workload
    client = RedisClient(kernel, REDIS_PORT)
    for command in ("PING", "SET a 1", "GET a", "DEL a", "EXISTS a", "DBSIZE"):
        client.command(command)
    serving_trace = tracer.finish()

    report = init_only_blocks(init_trace, serving_trace, REDIS_BINARY)
    syscall_report = specialization_report(init_trace, serving_trace)
    print(f"\ninit-only code   : {report.removable_count} blocks, "
          f"{report.removable_bytes()} bytes")
    print(f"init-only syscalls dropped: {syscall_report['dropped']}")
    print(f"post-init allow-list      : {syscall_report['allowed']}")

    # 3. one rewrite: wipe init code + install the syscall filter
    dynacut = DynaCut(kernel)
    allowed = serving_allowlist(serving_trace)

    def harden(rewriter):
        rewriter.wipe_blocks(REDIS_BINARY, list(report.init_only))
        rewriter.set_syscall_filter(set(allowed))

    session = dynacut.customize(server.pid, harden)
    server = dynacut.restored_process(server.pid)
    print(f"\nhardening rewrite: {session.total_ns / 1e6:.0f} virtual ms")

    # 4. the service is intact...
    print("\nservice check:")
    print("  PING ->", client.command("PING"))
    print("  SET  ->", client.command("SET k v"))
    print("  GET  ->", client.command("GET k"))

    # 5. ...but the attack surface is gone.  Simulate a hijack that
    # tries to fork: the filter kills the process with SIGSYS.
    print("\nsimulating a hijacked fork() under the filter...")
    server.regs.gpr[0] = int(Sys.FORK)
    from repro.kernel.process import ProcessState

    if server.state is ProcessState.BLOCKED:
        server.state = ProcessState.RUNNABLE
        server.wake_predicate = None
    # point the hijacked flow at a syscall instruction inside libc fork
    libc_module = next(m for m in server.modules if m.name == "libc.so")
    fork_addr = libc_module.load_base + kernel.binaries["libc.so"].symbol_address("fork")
    server.regs.rip = fork_addr
    kernel.run_until(lambda: not server.alive, max_instructions=100_000)
    print(f"  server terminated by {server.term_signal.name}: "
          "the fork never happened")
    assert server.term_signal is Signal.SIGSYS
    violations = [e for e in kernel.security_log if e.kind == "seccomp-violation"]
    print(f"  kernel logged {len(violations)} seccomp violation(s)")


if __name__ == "__main__":
    main()
