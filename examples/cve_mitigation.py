#!/usr/bin/env python3
"""Table 1 demo: blocking vulnerable Redis commands stops their CVEs.

Each simulated CVE lives in a specific command handler (STRALGO,
SETRANGE, CONFIG).  Against the vanilla server the crafted exploit
corrupts memory and kills the process; after DynaCut blocks the
command, the same bytes produce an error reply and the server lives.

Run:  python examples/cve_mitigation.py
"""

from repro import DynaCut, Kernel, TraceDiff, TrapPolicy
from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.attacks import REDIS_CVES, attempt_cve
from repro.tracing import BlockTracer
from repro.workloads import RedisClient


def block_command(kernel, server, spec):
    """Profile and dynamically block the CVE's command feature."""
    tracer = BlockTracer(kernel, server).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for command in ("PING", "SET a 1", "GET a", "DEL a"):
        client.command(command)
    wanted = tracer.nudge_dump()
    client.command(spec.benign_line)      # exercise the feature legitimately
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        spec.command, [wanted], [undesired]
    )
    dynacut = DynaCut(kernel)
    dynacut.disable_feature(
        server.pid, feature, policy=TrapPolicy.REDIRECT,
        redirect_symbol="redis_unknown_cmd",
    )
    return dynacut.restored_process(server.pid)


def main() -> None:
    print(f"{'CVE':18s} {'command':9s} {'vanilla':22s} {'with DynaCut'}")
    print("-" * 75)
    for spec in REDIS_CVES:
        # vanilla
        kernel = Kernel()
        server = stage_redis(kernel)
        vanilla = attempt_cve(kernel, server, REDIS_PORT, spec)
        vanilla_text = (
            f"crashed ({vanilla.term_signal.name})" if vanilla.exploited
            else "survived"
        )

        # customized
        kernel = Kernel()
        server = stage_redis(kernel)
        server = block_command(kernel, server, spec)
        blocked = attempt_cve(kernel, server, REDIS_PORT, spec)
        blocked_text = (
            f"mitigated: {blocked.response.decode().strip()!r}"
            if blocked.mitigated else "STILL EXPLOITED"
        )
        print(f"{spec.cve:18s} {spec.command:9s} {vanilla_text:22s} "
              f"{blocked_text}")

    print("\nall five CVEs: exploitable on vanilla, mitigated under DynaCut")


if __name__ == "__main__":
    main()
