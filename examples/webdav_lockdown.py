#!/usr/bin/env python3
"""WebDAV lockdown: the paper's Figure 10 administration scenario.

A Lighttpd-like server serves read-only pages.  After initialization,
DynaCut (1) wipes the initialization-only code and (2) locks the
WebDAV write methods — inadvertent PUT/DELETE requests get a 403 from
the server's own error handler.  Later, an administrator opens a short
maintenance window, uploads a file, and locks writes again.

Run:  python examples/webdav_lockdown.py
"""

from repro import DynaCut, Kernel, TraceDiff, TrapPolicy, init_only_blocks
from repro.apps import LIGHTTPD_PORT, stage_lighttpd
from repro.apps.httpd_lighttpd import FORBIDDEN_SYMBOL, LIGHTTPD_BINARY, READY_LINE
from repro.core import BlockMode
from repro.tracing import BlockTracer, merge_traces
from repro.workloads import HttpClient


def main() -> None:
    kernel = Kernel()
    server = stage_lighttpd(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, server).attach()
    kernel.run_until(lambda: READY_LINE in server.stdout_text())
    client = HttpClient(kernel, LIGHTTPD_PORT)

    # profile three phases: init | read-only traffic | webdav writes
    init_trace = tracer.nudge_dump()
    for __ in range(3):
        client.get("/")
    client.head("/")
    client.options("/")
    client.post("/echo", "sample")
    readonly_trace = tracer.nudge_dump()
    client.put("/probe.txt", "probe")
    client.delete("/probe.txt")
    dav_trace = tracer.finish()

    init_report = init_only_blocks(
        init_trace, merge_traces([readonly_trace, dav_trace]), LIGHTTPD_BINARY
    )
    dav = TraceDiff(LIGHTTPD_BINARY).feature_blocks(
        "webdav-write", [readonly_trace], [dav_trace]
    )
    print(f"init-only code : {init_report.removable_count} blocks, "
          f"{init_report.removable_bytes()} bytes "
          f"({init_report.removable_fraction:.0%} of executed blocks)")
    print(f"webdav feature : {dav.count} unique blocks")

    dynacut = DynaCut(kernel)

    # lock down: drop init code, block writes
    dynacut.remove_init_code(
        server.pid, LIGHTTPD_BINARY, list(init_report.init_only), wipe=True
    )
    server = dynacut.restored_process(server.pid)
    dynacut.disable_feature(
        server.pid, dav, policy=TrapPolicy.REDIRECT, mode=BlockMode.ENTRY,
        redirect_symbol=FORBIDDEN_SYMBOL,
    )
    server = dynacut.restored_process(server.pid)

    print("\nlocked down:")
    print("  GET /        ->", client.get("/").status)
    print("  PUT /f.txt   ->", client.put("/f.txt", "nope").status)

    # maintenance window
    print("\nmaintenance window opens...")
    dynacut.enable_feature(server.pid, dav)
    server = dynacut.restored_process(server.pid)
    print("  PUT /notice.html ->",
          client.put("/notice.html", "<p>maintenance done</p>").status)

    dynacut.disable_feature(
        server.pid, dav, policy=TrapPolicy.REDIRECT, mode=BlockMode.ENTRY,
        redirect_symbol=FORBIDDEN_SYMBOL,
    )
    server = dynacut.restored_process(server.pid)
    print("maintenance window closed")

    print("\nafter the window:")
    print("  GET /notice.html ->", client.get("/notice.html").status,
          client.get("/notice.html").body.decode())
    print("  PUT /other.txt   ->", client.put("/other.txt", "x").status)
    print(f"\n{len(dynacut.history)} rewrites, server pid {server.pid} "
          f"alive the whole time: {server.alive}")


if __name__ == "__main__":
    main()
