#!/usr/bin/env python3
"""Quickstart: dynamically disable and re-enable a Redis command.

Boots the simulated machine, starts the Redis-like server, profiles
wanted traffic vs the SET feature with the drcov tracer, then uses
DynaCut to block SET at run time (clients get the server's own error
reply), and finally re-enables it — all without dropping the client's
TCP connection.

Run:  python examples/quickstart.py
"""

from repro import DynaCut, Kernel, TraceDiff, TrapPolicy
from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.tracing import BlockTracer
from repro.workloads import RedisClient


def main() -> None:
    # 1. boot the machine and the server
    kernel = Kernel()
    server = stage_redis(kernel)
    print(f"server up: pid={server.pid}")
    print(server.stdout_text())

    client = RedisClient(kernel, REDIS_PORT)

    # 2. profile: wanted commands first, then the undesired feature
    tracer = BlockTracer(kernel, server).attach()
    for command in ("PING", "GET greeting", "DEL greeting", "DBSIZE"):
        client.command(command)
    wanted = tracer.nudge_dump()
    client.command("SET greeting hello")
    undesired = tracer.finish()

    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "SET", wanted=[wanted], undesired=[undesired]
    )
    print(f"\ntracediff: SET owns {feature.count} unique basic blocks, "
          f"entry block at {feature.entry.offset:#x}")

    # 3. disable the feature on the LIVE process (redirect policy: the
    #    trap handler sends execution to the dispatcher's error arm)
    dynacut = DynaCut(kernel)
    report = dynacut.disable_feature(
        server.pid, feature,
        policy=TrapPolicy.REDIRECT,
        redirect_symbol="redis_unknown_cmd",
    )
    server = dynacut.restored_process(server.pid)
    print("\nrewrite cost (virtual ms):")
    for phase, ms in report.breakdown_ms().items():
        print(f"  {phase:25s} {ms:8.1f}")

    print("\nwith SET disabled:")
    print("  SET k v   ->", client.command("SET k v"))
    print("  PING      ->", client.command("PING"))
    print("  GET k     ->", client.command("GET k"))
    assert server.alive, "the server survives blocked-feature accesses"

    # 4. the scenario changed: re-enable SET
    dynacut.enable_feature(server.pid, feature)
    server = dynacut.restored_process(server.pid)
    print("\nwith SET re-enabled:")
    print("  SET k v   ->", client.command("SET k v"))
    print("  GET k     ->", client.command("GET k"))
    print("\ndone: same process, same connection, feature toggled twice")


if __name__ == "__main__":
    main()
