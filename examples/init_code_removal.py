#!/usr/bin/env python3
"""Init-code removal and attack-surface reduction on an Nginx-like server.

Profiles the master/worker pair across its init/serving transition,
wipes the initialization-only code (including the now-unneeded
``fork`` PLT entry), and demonstrates the security consequence: a
Blind-ROP attack that relies on crash-and-respawn stops working,
because the master can no longer fork replacement workers.

Run:  python examples/init_code_removal.py
"""

from repro import DynaCut, Kernel, init_only_blocks
from repro.analysis import executed_plt_entries, plt_entries_in_blocks
from repro.apps import NGINX_PORT, nginx_worker, stage_nginx
from repro.apps.httpd_nginx import NGINX_BINARY, READY_LINE, WORKER_LINE
from repro.attacks import run_brop
from repro.tracing import BlockTracer, merge_traces
from repro.workloads import HttpClient


def profile(kernel):
    master = stage_nginx(kernel, run_to_ready=False)
    tracer_m = BlockTracer(kernel, master).attach()
    kernel.run_until(lambda: READY_LINE in master.stdout_text(),
                     max_instructions=8_000_000)
    worker = nginx_worker(kernel, master)
    tracer_w = BlockTracer(kernel, worker).attach()
    kernel.run_until(lambda: WORKER_LINE in worker.stdout_text())

    init = merge_traces([tracer_m.nudge_dump(), tracer_w.nudge_dump()])
    client = HttpClient(kernel, NGINX_PORT)
    for __ in range(3):
        client.get("/")
    client.head("/")
    serving = merge_traces([tracer_m.finish(), tracer_w.finish()])
    return master, init, serving


def main() -> None:
    # --- vanilla instance: BROP works because workers respawn
    kernel = Kernel()
    master, init, serving = profile(kernel)
    brop = run_brop(kernel, master, NGINX_PORT)
    print("vanilla Nginx-like server:")
    print(f"  BROP probes survived : {brop.probes_sent} "
          f"(workers respawned {brop.respawns_observed}x)")
    print(f"  attack feasible      : {brop.feasible}")

    # --- customized instance
    kernel = Kernel()
    master, init, serving = profile(kernel)
    report = init_only_blocks(init, serving, NGINX_BINARY)
    binary = kernel.binaries[NGINX_BINARY]
    executed_plt = executed_plt_entries(binary, merge_traces([init, serving]))
    removed_plt = plt_entries_in_blocks(binary, list(report.init_only))
    print(f"\ninit-only code: {report.removable_count} blocks "
          f"({report.removable_fraction:.0%} of executed)")
    print(f"PLT entries executed: {len(executed_plt)}; removed with the "
          f"init code: {len(removed_plt & executed_plt)}")
    print(f"  removed entries include: "
          f"{sorted(removed_plt & executed_plt)}")

    dynacut = DynaCut(kernel)
    rewrite = dynacut.remove_init_code(
        master.pid, NGINX_BINARY, list(report.init_only), wipe=True
    )
    master = dynacut.restored_process(master.pid)
    print(f"\nrewrite took {rewrite.total_ns / 1e6:.0f} virtual ms "
          f"({rewrite.stats.blocks_patched} ranges wiped)")

    client = HttpClient(kernel, NGINX_PORT)
    print("GET / after removal ->", client.get("/").status)

    brop = run_brop(kernel, master, NGINX_PORT)
    print("\nDynaCut-customized server:")
    print(f"  BROP probes survived : {brop.probes_sent} "
          f"(workers respawned {brop.respawns_observed}x)")
    print(f"  attack feasible      : {brop.feasible}")
    print("\nthe master crashed on its wiped fork path after the first "
          "probe, exactly as intended: no respawn, no brute force")


if __name__ == "__main__":
    main()
