"""DynaLint refinement: verifier trap-restores with and without static
removal-set refinement.

The §3.2.2 over-removal hazard, measured: a thin wanted profile (two
plain GETs) makes TraceDiff claim much more of Lighttpd than the DAV
feature owns.  Verify-mode removal of the raw set heals dozens of
blocks at runtime; refining the set first (dominator cutset over the
``lh_handle_request`` dispatcher arms) drops the suspects before the
rewrite, so only the enforced dispatcher arms ever trap — with
identical end-to-end behaviour and the redirect (403) policy
unaffected.
"""

from __future__ import annotations

import json

from repro.apps import LIGHTTPD_PORT, stage_lighttpd
from repro.apps.httpd_lighttpd import LIGHTTPD_BINARY, READY_LINE
from repro.core import BlockMode, DynaCut, TraceDiff, TrapPolicy
from repro.core.verifier import read_verifier_log
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import HttpClient

from conftest import print_table

DISPATCHER = "lh_handle_request"


def _thin_profile():
    kernel = Kernel()
    proc = stage_lighttpd(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: READY_LINE in proc.stdout_text(),
                     max_instructions=5_000_000)
    tracer.nudge_dump()
    client = HttpClient(kernel, LIGHTTPD_PORT)
    kernel.fs.write_file("/var/www/about.html", "<p>about</p>")
    client.get("/")
    client.get("/about.html")
    wanted = tracer.nudge_dump()
    client.put("/probe.txt", "x")
    client.delete("/probe.txt")
    undesired = tracer.finish()
    feature = TraceDiff(LIGHTTPD_BINARY).feature_blocks(
        "dav-write", [wanted], [undesired]
    )
    return kernel, proc, feature


def _exercise(client):
    return [
        client.get("/").status,
        client.get("/about.html").status,
        client.get("/missing.html").status,
        client.head("/").status,
        client.options("/").status,
        client.post("/echo", "abcd").status,
    ]


def _verify_run(refine: bool):
    kernel, proc, feature = _thin_profile()
    dynacut = DynaCut(kernel)
    report = dynacut.disable_feature(
        proc.pid, feature, policy=TrapPolicy.VERIFY, mode=BlockMode.ALL,
        refine=refine, dispatcher_symbol=DISPATCHER if refine else None,
    )
    proc = dynacut.restored_process(proc.pid)
    statuses = _exercise(HttpClient(kernel, LIGHTTPD_PORT))
    traps = len(read_verifier_log(kernel, proc).trapped_addresses)
    return {
        "removal_set": feature.count,
        "blocks_patched": report.stats.blocks_patched,
        "trap_restores": traps,
        "statuses": statuses,
        "lint_clean": report.lint.ok if report.lint else None,
        "classification": (
            report.refinement.counts if report.refinement else None
        ),
    }


def _redirect_run():
    """The 403 policy, untouched by refinement (it does not compose)."""
    kernel, proc, feature = _thin_profile()
    dynacut = DynaCut(kernel)
    dynacut.disable_feature(
        proc.pid, feature, policy=TrapPolicy.REDIRECT,
        redirect_symbol="http_forbidden_entry",
    )
    client = HttpClient(kernel, LIGHTTPD_PORT)
    return {
        "put_status": client.put("/x", "v").status,
        "get_status": client.get("/").status,
    }


def test_dynalint_refinement(benchmark, results_dir):
    def run():
        return {
            "unrefined": _verify_run(refine=False),
            "refined": _verify_run(refine=True),
            "redirect": _redirect_run(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    unrefined, refined = results["unrefined"], results["refined"]

    rows = [
        ["unrefined", unrefined["removal_set"], unrefined["blocks_patched"],
         unrefined["trap_restores"], unrefined["lint_clean"]],
        ["refined", refined["removal_set"], refined["blocks_patched"],
         refined["trap_restores"], refined["lint_clean"]],
    ]
    print_table(
        "DynaLint refinement: Lighttpd PUT/DELETE, thin wanted profile",
        ["variant", "removal set", "patched", "trap-restores", "lint clean"],
        rows,
    )
    (results_dir / "dynalint_refinement.json").write_text(
        json.dumps(results, indent=2)
    )

    # behaviour identical; trap-restores strictly reduced
    assert refined["statuses"] == unrefined["statuses"]
    assert refined["trap_restores"] < unrefined["trap_restores"]
    assert refined["blocks_patched"] < unrefined["blocks_patched"]
    # refinement really classified: suspects dropped, some blocks proven
    counts = refined["classification"]
    assert counts["suspect"] >= 1 and counts["provably_dead"] >= 1
    assert sum(counts.values()) == refined["removal_set"]
    # lint ran under the verify policy and found nothing
    assert refined["lint_clean"] is True and unrefined["lint_clean"] is True
    # the redirect policy is untouched by all of this
    assert results["redirect"] == {"put_status": 403, "get_status": 200}
