"""DynaGuard: an 8-instance fleet healing itself under live traffic.

The rollout benchmark shows the fleet *changing* without dropping
requests; this one shows it *breaking* without dropping them.  A
closed-loop client hammers the frontend for the whole window while
seeded chaos kills two instances mid-run (between heartbeats, so the
balancer serves from a stale view and must fail connections over), and
a trap storm hammers one instance's removed feature:

* both crashed instances recover **from their committed rewritten
  checkpoints** — alive, back in rotation, removal set intact — within
  the supervisor's backoff budget;
* every request is accounted: served, failed over, or logged as a
  failure (``total == served + failed``, no silent losses);
* the storm demotes **exactly one** instance (features re-enabled
  locally, marked degraded) while every other instance keeps its
  customization — no fleet-wide re-enable.
"""

from __future__ import annotations

import json

from repro.faults import FaultPlan
from repro.fleet import (
    FleetController,
    FleetPolicy,
    FleetSupervisor,
    HealthState,
    RolloutExecutor,
)
from repro.kernel import Kernel
from repro.workloads import SECOND_NS, TimelineEvent, run_request_timeline

from conftest import print_table

FLEET_SIZE = 8
DURATION_S = 24
#: heartbeats every 2 virtual seconds: probing 8 instances costs real
#: virtual time, and the balanced workload needs the rest of the window
TICK_EVERY_S = 2
#: chaos events sit between heartbeats: up to 1.5 virtual seconds of
#: stale balancer view per crash, which failover must absorb.  Three
#: visits of 8 instances each -> the armed on_call=3 fires at the first
#: event (instance 2) and on_call=20 at the third (instance 3).
CHAOS_AT_S = (2.5, 5.5, 8.5)
STORM_S = 15.5
STORM_REQUESTS = 6
STORM_VICTIM = 5


def _spawn() -> tuple[FleetController, FleetSupervisor]:
    policy = FleetPolicy(
        features=("dav-write",),
        strategy="rolling",
        max_unavailable=2,
        probe_requests=2,
        trap_storm_threshold=4,
    )
    controller = FleetController(Kernel(), "lighttpd", policy, size=FLEET_SIZE)
    controller.spawn_fleet()
    report = RolloutExecutor(controller).run()
    assert report.state == "completed"
    return controller, FleetSupervisor(controller)


def _run_supervised() -> dict:
    controller, supervisor = _spawn()
    kernel, app, pool = controller.kernel, controller.app, controller.pool
    victim = controller.instance(STORM_VICTIM)

    plan = (
        FaultPlan(seed=42)
        .arm("fleet.instance_crash", "transient", on_call=3, times=1)
        .arm("fleet.instance_crash", "transient", on_call=20, times=1)
    )
    from repro.fleet import inject_chaos

    crashed: list[str] = []

    def chaos() -> None:
        crashed.extend(inject_chaos(controller))

    def storm() -> None:
        for __ in range(STORM_REQUESTS):
            app.feature_request(kernel, victim.port, "dav-write")

    events = (
        [
            TimelineEvent(at_ns=second * SECOND_NS, label=f"tick-{second}",
                          action=supervisor.tick)
            for second in range(TICK_EVERY_S, DURATION_S, TICK_EVERY_S)
        ]
        + [
            TimelineEvent(at_ns=int(offset * SECOND_NS),
                          label=f"chaos-{offset}", action=chaos)
            for offset in CHAOS_AT_S
        ]
        + [
            TimelineEvent(at_ns=int(STORM_S * SECOND_NS), label="trap-storm",
                          action=storm),
        ]
    )
    with plan:
        timeline = run_request_timeline(
            kernel,
            lambda: app.wanted_request(kernel, controller.frontend_port),
            duration_ns=DURATION_S * SECOND_NS,
            events=events,
            failover_meter=lambda: pool.total_failovers,
        )
    served = sum(point.completed for point in timeline.points)
    return {
        "crashed": crashed,
        "recoveries": [
            {"instance": o.instance, "succeeded": o.succeeded, "source": o.source}
            for o in supervisor.recoveries
        ],
        "demotions": [
            e.to_dict() for e in supervisor.events if e.kind == "demoted"
        ],
        "states": {
            name: record.state.value
            for name, record in supervisor.records.items()
        },
        "settled": supervisor.settled,
        "workload": {
            "total_requests": timeline.total_requests,
            "served": served,
            "failed_requests": timeline.failed_requests,
            "failed_over_requests": timeline.failed_over_requests,
            "failover_events": timeline.failover_events,
            "errors": len(timeline.errors),
            "throughput": timeline.throughput_series(SECOND_NS),
        },
        "instances": {
            instance.name: {
                "alive": controller.alive(instance),
                "degraded": instance.degraded,
                "customized": instance.customized_features,
                "in_service": instance.port in pool.in_service(),
            }
            for instance in controller.instances
        },
    }


def test_supervisor_recovery_under_traffic(benchmark, results_dir):
    results = benchmark.pedantic(_run_supervised, rounds=1, iterations=1)

    print_table(
        f"DynaGuard: {FLEET_SIZE}x minilight, 2 seeded crashes + trap "
        "storm under closed-loop traffic",
        ["metric", "value"],
        [
            ["instances crashed", ", ".join(results["crashed"])],
            ["recoveries", len(results["recoveries"])],
            ["demotions", len(results["demotions"])],
            ["requests", results["workload"]["total_requests"]],
            ["served", results["workload"]["served"]],
            ["failed over", results["workload"]["failed_over_requests"]],
            ["failed", results["workload"]["failed_requests"]],
            ["settled", results["settled"]],
        ],
    )
    (results_dir / "supervisor_recovery.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    # exactly the two planned instances crashed, and both recovered
    # from their committed checkpoints — removal set intact
    assert sorted(results["crashed"]) == ["lighttpd-2", "lighttpd-3"]
    assert len(results["recoveries"]) == 2
    for recovery in results["recoveries"]:
        assert recovery["succeeded"]
        assert recovery["source"] == "checkpoint"
    for name in ("lighttpd-2", "lighttpd-3"):
        entry = results["instances"][name]
        assert entry["alive"] and entry["in_service"]
        assert entry["customized"] == ["dav-write"]
        assert not entry["degraded"]

    # zero unaccounted request losses: every request was served,
    # failed over (and served), or logged as failed
    workload = results["workload"]
    assert workload["total_requests"] == (
        workload["served"] + workload["failed_requests"]
    )
    # the stale-view windows after each crash really exercised failover
    assert workload["failed_over_requests"] >= 1
    # traffic kept flowing to the end of the window
    assert workload["throughput"][-1][1] > 0

    # the trap storm demoted exactly one instance, locally
    assert len(results["demotions"]) == 1
    assert results["demotions"][0]["instance"] == f"lighttpd-{STORM_VICTIM}"
    victim = results["instances"][f"lighttpd-{STORM_VICTIM}"]
    assert victim["degraded"] and victim["customized"] == []
    assert victim["in_service"]
    for name, entry in results["instances"].items():
        if name != f"lighttpd-{STORM_VICTIM}":
            assert entry["customized"] == ["dav-write"], name

    # the fleet settled: nothing stuck outside HEALTHY/QUARANTINED
    assert results["settled"]
    assert set(results["states"].values()) == {HealthState.HEALTHY.value}
