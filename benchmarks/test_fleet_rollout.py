"""DynaFleet: canary/rolling customization of a fleet under live traffic.

The single-process experiments (Figure 8) show one server surviving a
rewrite; this benchmark scales the claim to an 8-instance fleet behind
the balancer.  A closed-loop client hammers the frontend port for the
whole run while the rollout executor drains, customizes, health-gates
and rejoins instances between timeline buckets:

* **canary** and **rolling** rollouts must complete with *zero* failed
  balanced requests — drains show up as throughput dips, never errors;
* a seeded permanent fault injected into the canary's restore must
  abort the whole rollout with every instance rolled back to pristine
  and still serving.
"""

from __future__ import annotations

import json

from repro.faults import FaultPlan
from repro.fleet import FleetController, FleetPolicy, RolloutExecutor
from repro.kernel import Kernel
from repro.workloads import SECOND_NS, TimelineEvent, run_request_timeline

from conftest import print_table

FLEET_SIZE = 8
DURATION_S = 40
FIRST_STEP_S = 2
STEP_EVERY_S = 3


def _spawn(strategy: str, max_unavailable: int = 2) -> FleetController:
    policy = FleetPolicy(
        features=("dav-write",),
        strategy=strategy,
        max_unavailable=max_unavailable,
        probe_requests=4,
    )
    controller = FleetController(
        Kernel(), "lighttpd", policy, size=FLEET_SIZE
    )
    controller.spawn_fleet()
    return controller


def _rollout_under_traffic(controller: FleetController, plan=None) -> dict:
    """Drive the rollout from inside a continuous balanced workload."""
    executor = RolloutExecutor(controller)
    kernel, app = controller.kernel, controller.app

    def step() -> None:
        if executor.done:
            return
        if plan is not None and executor.report.state == "pending":
            with plan:                  # fault armed for the canary batch
                executor.step()
        else:
            executor.step()

    events = [
        TimelineEvent(
            at_ns=(FIRST_STEP_S + STEP_EVERY_S * i) * SECOND_NS,
            label=f"rollout-step-{i}", action=step,
        )
        for i in range(FLEET_SIZE + 2)
    ]
    timeline = run_request_timeline(
        kernel,
        lambda: app.wanted_request(kernel, controller.frontend_port),
        duration_ns=DURATION_S * SECOND_NS,
        events=events,
    )
    assert executor.done, "rollout must finish within the workload window"
    all_serving = all(
        controller.alive(i) and app.wanted_request(kernel, i.port)
        for i in controller.instances
    )
    return {
        "strategy": controller.policy.strategy,
        "rollout": executor.report.to_dict(),
        "pristine": not any(i.customized for i in controller.instances),
        "all_serving": all_serving,
        "in_service": controller.pool.in_service(),
        "workload": {
            "total_requests": timeline.total_requests,
            "failed_requests": timeline.failed_requests,
            "errors": len(timeline.errors),
            "min_bucket": timeline.min_bucket(),
            "max_bucket": timeline.max_bucket(),
            "throughput": timeline.throughput_series(SECOND_NS),
        },
    }


def test_fleet_rollout_under_traffic(benchmark, results_dir):
    def run():
        canary = _rollout_under_traffic(_spawn("canary"))
        rolling = _rollout_under_traffic(_spawn("rolling"))
        fault = _rollout_under_traffic(
            _spawn("canary"),
            plan=FaultPlan(seed=1234).arm(
                "restore.memory", "permanent", on_call=1, times=10
            ),
        )
        return {"canary": canary, "rolling": rolling, "canary-fault": fault}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"DynaFleet rollout, {FLEET_SIZE}x minilight under closed-loop "
        "traffic",
        ["scenario", "state", "customized", "rolled back", "max drained",
         "requests", "failed"],
        [
            [name, row["rollout"]["state"],
             len(row["rollout"]["customized"]),
             len(row["rollout"]["rolled_back"]),
             row["rollout"]["max_drained_seen"],
             row["workload"]["total_requests"],
             row["workload"]["failed_requests"]]
            for name, row in results.items()
        ],
    )
    (results_dir / "fleet_rollout.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    for name in ("canary", "rolling"):
        row = results[name]
        # the whole fleet got customized without a single failed request
        assert row["rollout"]["state"] == "completed"
        assert len(row["rollout"]["customized"]) == FLEET_SIZE
        assert not row["pristine"]
        assert row["workload"]["failed_requests"] == 0
        assert row["workload"]["errors"] == 0
        # a batch costs virtual time (dips, possibly empty buckets) but
        # throughput is fully recovered by the end of the window
        assert row["workload"]["throughput"][-1][1] > 0
        assert len(row["in_service"]) == FLEET_SIZE
        # the drain budget held: never more than max_unavailable out
        assert row["rollout"]["max_drained_seen"] <= 2

    fault = results["canary-fault"]
    # the injected canary fault aborted everything back to pristine...
    assert fault["rollout"]["state"] == "aborted"
    assert fault["rollout"]["customized"] == []
    assert fault["pristine"]
    # ...with the whole fleet alive, serving, and back in rotation
    assert fault["all_serving"]
    assert len(fault["in_service"]) == FLEET_SIZE
    assert fault["workload"]["failed_requests"] == 0
