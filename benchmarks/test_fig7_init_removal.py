"""Figure 7: overhead of removing initialization code from live processes.

Paper numbers: Lighttpd 0.93 s, Nginx 3.5 s, SPEC from 0.22 s (mcf, the
smallest) to 18 s (perlbench, the most init blocks), split into
checkpoint/restore vs code update — the code-update share grows with
the number of init-only blocks.
"""

from __future__ import annotations

import json

from repro.core import DynaCut

from conftest import (
    SPEC_EVALUATED,
    print_table,
    profile_lighttpd,
    profile_nginx,
    profile_spec,
)


def _remove_init(profiled):
    dynacut = DynaCut(profiled.kernel)
    report = dynacut.remove_init_code(
        profiled.root.pid,
        profiled.binary,
        list(profiled.init_report.init_only),
        wipe=True,
    )
    # the process must survive the removal
    proc = dynacut.restored_process(profiled.root.pid)
    assert proc.alive
    return report


def test_fig7_init_code_removal_overhead(benchmark, results_dir):
    def run():
        out = {}
        lighttpd, __ = profile_lighttpd()
        out["Lighttpd"] = (lighttpd.init_report, _remove_init(lighttpd))
        nginx, __ = profile_nginx()
        out["Nginx"] = (nginx.init_report, _remove_init(nginx))
        for name in SPEC_EVALUATED:
            profiled = profile_spec(name)
            out[name] = (profiled.init_report, _remove_init(profiled))
        return out

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    results = {}
    for app, (init_report, report) in outcomes.items():
        breakdown = report.breakdown_ms()
        checkpoint_restore = breakdown["checkpoint"] + breakdown["restore"]
        code_update = breakdown["disable code w/ int3"]
        rows.append([
            app,
            init_report.removable_count,
            f"{init_report.removable_bytes() / 1024:.1f}KB",
            f"{report.image_bytes / 1e6:.2f}MB",
            f"{checkpoint_restore:.0f}",
            f"{code_update:.0f}",
            f"{breakdown['total']:.0f}",
        ])
        results[app] = {
            "init_blocks_removed": init_report.removable_count,
            "init_bytes_removed": init_report.removable_bytes(),
            "image_bytes": report.image_bytes,
            "checkpoint_restore_ms": checkpoint_restore,
            "code_update_ms": code_update,
            "total_ms": breakdown["total"],
        }

    print_table(
        "Figure 7: init-code removal overhead (virtual ms)",
        ["app", "init BBs", "init code", "image", "C/R", "code update", "total"],
        rows,
    )
    (results_dir / "fig7_init_removal.json").write_text(
        json.dumps(results, indent=2)
    )

    totals = {app: r["total_ms"] for app, r in results.items()}
    # paper shape: Nginx (2 processes, most init blocks of the servers)
    # costs more than Lighttpd
    assert totals["Nginx"] > totals["Lighttpd"]
    # perlbench is the most expensive SPEC case, mcf the cheapest
    spec_totals = {k: v for k, v in totals.items() if k.startswith(("6",))}
    assert max(spec_totals, key=spec_totals.get) == "600.perlbench_s"
    assert min(spec_totals, key=spec_totals.get) == "605.mcf_s"
    # code-update time is proportional to the removed block count:
    # perlbench has the most blocks AND the highest code-update share
    blocks = {app: r["init_blocks_removed"] for app, r in results.items()}
    updates = {app: r["code_update_ms"] for app, r in results.items()}
    assert max(blocks, key=blocks.get) == "600.perlbench_s"
    assert max(updates, key=updates.get) == "600.perlbench_s"
    ordered_by_blocks = sorted(blocks, key=blocks.get)
    ordered_by_update = sorted(updates, key=updates.get)
    assert ordered_by_blocks[-1] == ordered_by_update[-1]
