"""Shared profiling machinery for the experiment benchmarks.

Each ``test_fig*.py`` / ``test_table*.py`` module regenerates one table
or figure of the paper's evaluation (§4).  Wall-clock numbers in the
paper are testbed measurements; this harness reports the simulator's
*virtual-time* equivalents and asserts the paper's qualitative shape
(orderings, ratios, win/loss outcomes) rather than absolute values.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.apps import (
    LIGHTTPD_PORT,
    NGINX_PORT,
    REDIS_PORT,
    nginx_worker,
    stage_lighttpd,
    stage_nginx,
    stage_redis,
    stage_spec,
    get_benchmark,
)
from repro.apps.httpd_lighttpd import (
    LIGHTTPD_BINARY,
    READY_LINE as LIGHTTPD_READY,
)
from repro.apps.httpd_nginx import (
    NGINX_BINARY,
    READY_LINE as NGINX_READY,
    WORKER_LINE as NGINX_WORKER_LINE,
)
from repro.apps.kvstore import REDIS_BINARY, READY_LINE as REDIS_READY
from repro.apps.spec import INIT_DONE_LINE
from repro.core import TraceDiff, init_only_blocks
from repro.kernel import Kernel
from repro.tracing import BlockTracer, merge_traces
from repro.workloads import HttpClient, RedisClient


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a paper-style results table."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@dataclass
class ProfiledServer:
    """A booted server with init/wanted(/feature) traces collected."""

    kernel: Kernel
    root: object                 # root Process
    binary: str
    init_trace: object
    serving_trace: object
    init_report: object


# ----------------------------------------------------------------------
# per-app profiling recipes


def profile_redis(feature_command: str | None = None):
    """Boot miniredis, profile init + serving (+ optionally a feature)."""
    kernel = Kernel()
    proc = stage_redis(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: REDIS_READY in proc.stdout_text(),
                     max_instructions=5_000_000)
    init_trace = tracer.nudge_dump()
    client = RedisClient(kernel, REDIS_PORT)
    feature_word = feature_command.split()[0] if feature_command else None
    for cmd in ("PING", "SET a 1", "GET a", "DEL a", "EXISTS a", "DBSIZE",
                "INCR n", "APPEND a x", "STRLEN a"):
        if feature_word is not None and cmd.split()[0] == feature_word:
            continue  # the undesired feature must stay out of wanted traces
        client.command(cmd)
    if feature_command is None:
        serving = tracer.finish()
        feature = None
    else:
        wanted = tracer.nudge_dump()
        client.command(feature_command)
        undesired = tracer.finish()
        serving = merge_traces([wanted, undesired])
        feature = TraceDiff(REDIS_BINARY).feature_blocks(
            feature_command.split()[0], [wanted], [undesired]
        )
    report = init_only_blocks(init_trace, serving, REDIS_BINARY)
    return ProfiledServer(kernel, proc, REDIS_BINARY, init_trace, serving,
                          report), feature


def profile_lighttpd(with_dav_feature: bool = False):
    kernel = Kernel()
    proc = stage_lighttpd(kernel, run_to_ready=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: LIGHTTPD_READY in proc.stdout_text(),
                     max_instructions=5_000_000)
    init_trace = tracer.nudge_dump()
    client = HttpClient(kernel, LIGHTTPD_PORT)
    kernel.fs.write_file("/var/www/about.html", "<p>about</p>")
    for __ in range(3):
        client.get("/")
    client.get("/about.html")
    client.get("/missing.html")
    client.head("/")
    client.options("/")
    client.post("/echo", "abcd")
    if with_dav_feature:
        wanted = tracer.nudge_dump()
        client.put("/probe.txt", "x")
        client.delete("/probe.txt")
        undesired = tracer.finish()
        serving = merge_traces([wanted, undesired])
        feature = TraceDiff(LIGHTTPD_BINARY).feature_blocks(
            "dav-write", [wanted], [undesired]
        )
    else:
        serving = tracer.finish()
        feature = None
    report = init_only_blocks(init_trace, serving, LIGHTTPD_BINARY)
    return ProfiledServer(kernel, proc, LIGHTTPD_BINARY, init_trace, serving,
                          report), feature


def profile_nginx(with_dav_feature: bool = False):
    kernel = Kernel()
    master = stage_nginx(kernel, run_to_ready=False)
    tracer_m = BlockTracer(kernel, master).attach()
    kernel.run_until(lambda: NGINX_READY in master.stdout_text(),
                     max_instructions=8_000_000)
    worker = nginx_worker(kernel, master)
    tracer_w = BlockTracer(kernel, worker).attach()
    kernel.run_until(lambda: NGINX_WORKER_LINE in worker.stdout_text(),
                     max_instructions=2_000_000)
    init_trace = merge_traces([tracer_m.nudge_dump(), tracer_w.nudge_dump()])
    client = HttpClient(kernel, NGINX_PORT)
    kernel.fs.write_file("/var/www/about.html", "<p>about</p>")
    for __ in range(3):
        client.get("/")
    client.get("/about.html")
    client.get("/missing.html")
    client.head("/")
    client.options("/")
    client.post("/echo", "abcd")
    if with_dav_feature:
        wanted = merge_traces([tracer_m.nudge_dump(), tracer_w.nudge_dump()])
        client.put("/probe.txt", "x")
        client.delete("/probe.txt")
        undesired = merge_traces([tracer_m.finish(), tracer_w.finish()])
        serving = merge_traces([wanted, undesired])
        feature = TraceDiff(NGINX_BINARY).feature_blocks(
            "dav-write", [wanted], [undesired]
        )
    else:
        serving = merge_traces([tracer_m.finish(), tracer_w.finish()])
        feature = None
    report = init_only_blocks(init_trace, serving, NGINX_BINARY)
    return ProfiledServer(kernel, master, NGINX_BINARY, init_trace, serving,
                          report), feature


#: benchmarks evaluated in Figures 7 and 9 (602.gcc/657.xz analogues are
#: excluded exactly as in the paper, which could not trace them)
SPEC_EVALUATED = (
    "600.perlbench_s",
    "605.mcf_s",
    "620.omnetpp_s",
    "623.xalancbmk_s",
    "625.x264_s",
    "631.deepsjeng_s",
    "641.leela_s",
)

#: iterations long enough that a mid-run rewrite finds the process alive
SPEC_ITERATIONS = {
    "600.perlbench_s": 40,
    "605.mcf_s": 400,
    "620.omnetpp_s": 40,
    "623.xalancbmk_s": 40,
    "625.x264_s": 10,
    "631.deepsjeng_s": 30,
    "641.leela_s": 2500,
}


def profile_spec(name: str, to_completion: bool = False):
    """Boot a SPEC-like benchmark and split coverage at init-done."""
    bench = get_benchmark(name)
    kernel = Kernel()
    proc = stage_spec(kernel, name, iterations=SPEC_ITERATIONS[name],
                      run_to_init=False)
    tracer = BlockTracer(kernel, proc).attach()
    kernel.run_until(lambda: INIT_DONE_LINE in proc.stdout_text(),
                     max_instructions=20_000_000)
    init_trace = tracer.nudge_dump(quiesce=False)
    if to_completion:
        kernel.run_until(lambda: not proc.alive, max_instructions=120_000_000)
    else:
        kernel.run(max_instructions=1_500_000)
    serving = tracer.finish(quiesce=False)
    report = init_only_blocks(init_trace, serving, bench.binary)
    return ProfiledServer(kernel, proc, bench.binary, init_trace, serving,
                          report)


@pytest.fixture(scope="session")
def results_dir(request):
    """Directory for machine-readable experiment outputs."""
    import pathlib

    path = pathlib.Path(request.config.rootpath) / "results"
    path.mkdir(exist_ok=True)
    return path
