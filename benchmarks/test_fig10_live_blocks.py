"""Figure 10: live basic blocks over the process lifetime.

The paper's scenario: Lighttpd serves read-only pages most of the
time; DynaCut keeps only the code of the *current phase* executable
("maintain a minimal available code feature set", §3.2.4) — after
initialization the allow-list shrinks to the serving code, a short
administration window re-enables the WebDAV write path for an upload,
then the allow-list shrinks again.  RAZOR-like and CHISEL-like static
debloaters are one-shot: their (larger) keep sets are flat lines for
the whole lifetime.  Paper: DynaCut keeps < 17% of blocks visible,
always below both baselines.

"Live" counts static basic blocks whose entry byte is still mapped and
not ``int3``, normalized by the binary's static block count.
"""

from __future__ import annotations

import json

from repro.analysis import build_cfg
from repro.apps import LIGHTTPD_PORT
from repro.core import DynaCut, chisel_debloat, razor_debloat
from repro.core.covgraph import CoverageGraph
from repro.isa import INT3_OPCODE
from repro.tracing import BlockRecord
from repro.workloads import HttpClient

from conftest import print_table, profile_lighttpd


def _phase_blocks(cfg, allow_bytes):
    """Split static blocks into (needed, removable) for one phase."""
    needed, removable = [], []
    for block in cfg.blocks:
        if any(offset in allow_bytes
               for offset in range(block.start, block.end)):
            needed.append(block)
        else:
            removable.append(block)
    return needed, removable


def _records(module, blocks):
    return [BlockRecord(module, b.start, b.size) for b in blocks]


def _live_fraction(proc, cfg) -> float:
    live = 0
    for block in cfg.blocks:
        try:
            byte = proc.memory.read_raw(block.start, 1)[0]
        except Exception:
            continue
        if byte != INT3_OPCODE:
            live += 1
    return live / cfg.block_count


def test_fig10_live_blocks_over_time(benchmark, results_dir):
    def run():
        profiled, dav = profile_lighttpd(with_dav_feature=True)
        kernel = profiled.kernel
        module = profiled.binary
        binary = kernel.binaries[module]
        cfg = build_cfg(binary)
        client = HttpClient(kernel, LIGHTTPD_PORT)
        dynacut = DynaCut(kernel)
        proc = profiled.root

        # phase allow-lists (byte coverage) from the profiling traces:
        # the serving trace covers read-only traffic plus the dav probe;
        # the read-only allow-list excludes the feature's unique bytes
        serving_graph = CoverageGraph.from_traces(profiled.serving_trace)
        serving_bytes = serving_graph.covered_bytes(module)
        dav_unique = {
            offset
            for block in dav.blocks
            for offset in range(block.offset, block.offset + block.size)
        }
        readonly_allow = serving_bytes - dav_unique
        admin_allow = serving_bytes

        __, removable_readonly = _phase_blocks(cfg, readonly_allow)
        __, removable_admin = _phase_blocks(cfg, admin_allow)

        series = []

        def snap(label):
            series.append((label, _live_fraction(proc, cfg)))

        snap("boot")
        snap("init done")

        # lockdown to the read-only serving allow-list
        dynacut.customize(
            proc.pid,
            lambda rw: rw.block_entry_int3(
                module, _records(module, removable_readonly)
            ),
        )
        proc = dynacut.restored_process(proc.pid)
        snap("locked to read-only set")
        for __ in range(4):
            assert client.get("/").status == 200
            snap("serving (read-only)")

        # administration window: re-enable exactly the write-path blocks
        delta = [b for b in removable_readonly if b not in removable_admin]
        dynacut.customize(
            proc.pid,
            lambda rw: rw.restore_blocks(module, _records(module, delta)),
        )
        proc = dynacut.restored_process(proc.pid)
        snap("PUT re-enabled")
        assert client.put("/upload.txt", "admin data").status == 201
        snap("admin upload")

        dynacut.customize(
            proc.pid,
            lambda rw: rw.block_entry_int3(module, _records(module, delta)),
        )
        proc = dynacut.restored_process(proc.pid)
        snap("PUT disabled again")
        assert client.get("/upload.txt").status == 200
        snap("serving (read-only)")
        snap("terminate")

        traces = [profiled.init_trace, profiled.serving_trace]
        razor = razor_debloat(binary, traces)
        chisel = chisel_debloat(binary, traces)
        return series, razor, chisel

    series, razor, chisel = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [slot, label, f"{fraction:.1%}", f"{razor.live_fraction:.1%}",
         f"{chisel.live_fraction:.1%}"]
        for slot, (label, fraction) in enumerate(series)
    ]
    print_table(
        "Figure 10: live basic blocks over time (% of static blocks)",
        ["slot", "phase", "DynaCut", "RAZOR", "CHISEL"],
        rows,
    )
    (results_dir / "fig10_live_blocks.json").write_text(json.dumps({
        "dynacut": [(label, fraction) for label, fraction in series],
        "razor": razor.live_fraction,
        "chisel": chisel.live_fraction,
    }, indent=2))

    from repro.tools.svgplot import LineChart

    chart = LineChart("Figure 10: live basic blocks over time",
                      "timeline slot", "live blocks (%)")
    chart.add_series(
        "DynaCut", [(i, f * 100) for i, (__, f) in enumerate(series)]
    )
    n = len(series)
    chart.add_series("RAZOR", [(0, razor.live_fraction * 100),
                               (n - 1, razor.live_fraction * 100)], dashed=True)
    chart.add_series("CHISEL", [(0, chisel.live_fraction * 100),
                                (n - 1, chisel.live_fraction * 100)],
                     dashed=True)
    chart.save(results_dir / "fig10_live_blocks.svg")

    fractions = [fraction for __, fraction in series]
    # boot: everything live; the lockdown drops it sharply
    assert fractions[0] > 0.95
    assert fractions[2] < 0.5 * fractions[0]
    # admin window raises liveness slightly; closing lowers it again
    reenabled = dict(enumerate(fractions))[7]
    relocked = dict(enumerate(fractions))[9]
    assert reenabled > fractions[6]
    assert relocked < reenabled
    # during read-only serving DynaCut stays strictly below both
    # (one-shot) baselines at every post-lockdown slot
    for fraction in fractions[2:]:
        assert fraction < razor.live_fraction
        assert fraction < chisel.live_fraction
    # baselines are flat; DynaCut's line moves with the phases
    assert len({round(f, 4) for f in fractions}) > 2
