"""DynaMesh scale-out: throughput vs shard count on a keyed workload.

The mesh's clock model makes shards genuinely parallel machines — a
request served on one host advances only that host's virtual clock,
and mesh wall time is the max over hosts.  This benchmark pins the
consequence: a fixed keyed GET workload completes in roughly ``1/N``
the mesh wall time on ``N`` shards, because the hash frontend splits
the keyspace across hosts and each host only accrues its own shard's
service time.

Perfect linearity is *not* asserted (the ring's arcs are not exactly
even, and the busiest shard sets the wall clock); the qualitative
shape is: each doubling must help, and four shards must at least
double one.
"""

from __future__ import annotations

import json

from repro.fleet import FleetPolicy
from repro.mesh import MeshController
from repro.workloads import SECOND_NS

from conftest import print_table

SHARD_COUNTS = (1, 2, 4)
SIZE_PER_SHARD = 1
KEYSPACE = 64
REQUESTS = 240


def _throughput(shards: int) -> dict:
    policy = FleetPolicy(
        features=("SET",), shards=shards, ring_replicas=32
    )
    mesh = MeshController("redis", policy, size_per_shard=SIZE_PER_SHARD)
    mesh.spawn_mesh()
    keys = [f"key-{index}" for index in range(KEYSPACE)]
    for key in keys:
        assert mesh.store(key, "v")
    # align every host on one serving epoch, then measure mesh wall time
    mesh.clock.clock_ns = mesh.clock.clock_ns
    start = mesh.clock.clock_ns
    host_starts = {host.name: host.kernel.clock_ns for host in mesh.hosts}
    for index in range(REQUESTS):
        assert mesh.wanted_request(key=keys[index % KEYSPACE])
    elapsed = mesh.clock.clock_ns - start
    stats = mesh.frontend.stats()
    assert stats["accounted"] and stats["shed"] == 0
    assert sum(stats["dispatched"].values()) >= REQUESTS
    return {
        "shards": shards,
        "requests": REQUESTS,
        "elapsed_ns": elapsed,
        "throughput_rps": REQUESTS * SECOND_NS / elapsed,
        "per_host_busy_ns": {
            host.name: host.kernel.clock_ns - host_starts[host.name]
            for host in mesh.hosts
        },
        "dispatched": stats["dispatched"],
    }


def test_mesh_scaleout(results_dir):
    rows = [_throughput(shards) for shards in SHARD_COUNTS]
    by_shards = {row["shards"]: row for row in rows}
    speedup = {
        shards: by_shards[shards]["throughput_rps"] / by_shards[1]["throughput_rps"]
        for shards in SHARD_COUNTS
    }

    print_table(
        "DynaMesh scale-out (keyed GET, hash frontend)",
        ["shards", "requests", "elapsed (virt ms)", "throughput (req/s)",
         "speedup vs 1"],
        [
            [
                row["shards"],
                row["requests"],
                f"{row['elapsed_ns'] / 1e6:.2f}",
                f"{row['throughput_rps']:.0f}",
                f"{speedup[row['shards']]:.2f}x",
            ]
            for row in rows
        ],
    )

    # every shard actually served a slice of the keyspace
    for row in rows:
        assert all(count > 0 for count in row["dispatched"].values()), row

    # qualitative scale-out shape: each doubling helps, 4 shards at
    # least doubles one (ring imbalance forbids asserting exactly Nx)
    assert speedup[2] >= 1.3, f"2 shards gained only {speedup[2]:.2f}x"
    assert speedup[4] / speedup[2] >= 1.2, (
        f"4 shards over 2 gained only {speedup[4] / speedup[2]:.2f}x"
    )
    assert speedup[4] >= 2.0, f"4 shards gained only {speedup[4]:.2f}x"

    (results_dir / "mesh_scaleout.json").write_text(
        json.dumps(
            {
                "workload": {
                    "requests": REQUESTS,
                    "keyspace": KEYSPACE,
                    "size_per_shard": SIZE_PER_SHARD,
                    "routing": "hash",
                },
                "points": rows,
                "speedup": {str(k): v for k, v in speedup.items()},
            },
            indent=2,
        )
        + "\n"
    )
