"""Figure 9: executed vs removed basic blocks per application.

For each of the nine applications the paper reports: total static
blocks (Angr), executed blocks (drcov), init-only blocks removed, code
size, and the size of removed init code.  Headline claims: up to 56%
of executed blocks removed for Nginx, ~46% for Lighttpd, and 8.4-41.4%
(mean 22.3%) across SPEC with perlbench at the top.
"""

from __future__ import annotations

import json

from repro.analysis import build_cfg

from conftest import (
    SPEC_EVALUATED,
    print_table,
    profile_lighttpd,
    profile_nginx,
    profile_spec,
)


def test_fig9_removed_block_counts(benchmark, results_dir):
    def run():
        out = {}
        lighttpd, __ = profile_lighttpd()
        out["Lighttpd"] = lighttpd
        nginx, __ = profile_nginx()
        out["Nginx"] = nginx
        for name in SPEC_EVALUATED:
            out[name] = profile_spec(name, to_completion=True)
        return out

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    results = {}
    for app, profiled in profiles.items():
        binary = profiled.kernel.binaries[profiled.binary]
        report = profiled.init_report
        total_static = build_cfg(binary).block_count
        fraction = report.removable_fraction
        rows.append([
            app,
            total_static,
            report.total_executed,
            report.removable_count,
            f"{fraction:.1%}",
            f"{binary.code_size() / 1024:.1f}KB",
            f"{report.removable_bytes() / 1024:.2f}KB",
        ])
        results[app] = {
            "total_static_blocks": total_static,
            "executed_blocks": report.total_executed,
            "removed_blocks": report.removable_count,
            "removed_fraction": fraction,
            "code_size": binary.code_size(),
            "init_code_removed": report.removable_bytes(),
        }

    print_table(
        "Figure 9: executed vs removed basic blocks",
        ["app", "total BBs", "executed", "removed", "removed %",
         "code size", "init code rm"],
        rows,
    )
    (results_dir / "fig9_removed_blocks.json").write_text(
        json.dumps(results, indent=2)
    )

    # paper shape assertions
    fractions = {app: r["removed_fraction"] for app, r in results.items()}
    # servers: a large share of executed code is init-only (paper: 46-56%)
    assert fractions["Nginx"] > 0.3
    assert fractions["Lighttpd"] > 0.3
    # SPEC: nontrivial but smaller, with perlbench at the top
    spec = {k: v for k, v in fractions.items() if k[0].isdigit()}
    assert max(spec, key=spec.get) == "600.perlbench_s"
    assert all(0.03 < v < 0.75 for v in spec.values()), spec
    # every app: executed <= total static blocks, removed <= executed
    for app, r in results.items():
        assert r["executed_blocks"] <= r["total_static_blocks"], app
        assert r["removed_blocks"] <= r["executed_blocks"], app
