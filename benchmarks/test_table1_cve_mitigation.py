"""Table 1: Redis CVEs mitigated by DynaCut's feature blocking.

For each CVE: the exploit succeeds against the vanilla server (memory
corruption, crash or control-flow hijack) and is mitigated once the
command's feature is dynamically blocked — the client receives the
server's error reply and the service keeps running.
"""

from __future__ import annotations

import json

from repro.apps import REDIS_PORT
from repro.attacks import REDIS_CVES, attempt_cve
from repro.core import BlockMode, DynaCut, TrapPolicy
from repro.workloads import RedisClient

from conftest import print_table, profile_redis


def test_table1_cve_mitigation(benchmark, results_dir):
    def run():
        outcomes = {}
        for spec in REDIS_CVES:
            # vanilla server: deliver the exploit
            vanilla, __ = profile_redis()
            vanilla_outcome = attempt_cve(
                vanilla.kernel, vanilla.root, REDIS_PORT, spec
            )

            # customized server: block the command feature, re-attack
            profiled, feature = profile_redis(
                feature_command=spec.benign_line
            )
            dynacut = DynaCut(profiled.kernel)
            dynacut.disable_feature(
                profiled.root.pid, feature, policy=TrapPolicy.REDIRECT,
                mode=BlockMode.ENTRY, redirect_symbol="redis_unknown_cmd",
            )
            proc = dynacut.restored_process(profiled.root.pid)
            blocked_outcome = attempt_cve(
                profiled.kernel, proc, REDIS_PORT, spec
            )
            still_serving = RedisClient(profiled.kernel, REDIS_PORT).ping()
            outcomes[spec.cve] = (spec, vanilla_outcome, blocked_outcome,
                                  still_serving)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    results = {}
    for cve, (spec, vanilla, blocked, still_serving) in outcomes.items():
        rows.append([
            cve,
            spec.command,
            "exploited" if vanilla.exploited else "survived",
            "mitigated" if blocked.mitigated else "EXPLOITED",
            "yes" if still_serving else "no",
        ])
        results[cve] = {
            "command": spec.command,
            "vanilla_exploited": vanilla.exploited,
            "dynacut_mitigated": blocked.mitigated,
            "service_alive_after": still_serving,
        }
    print_table(
        "Table 1: Redis CVEs vs DynaCut feature blocking",
        ["CVE", "command", "vanilla", "w/ DynaCut", "service alive"],
        rows,
    )
    (results_dir / "table1_cves.json").write_text(json.dumps(results, indent=2))

    assert len(results) == 5
    for cve, r in results.items():
        assert r["vanilla_exploited"], f"{cve}: exploit should work on vanilla"
        assert r["dynacut_mitigated"], f"{cve}: DynaCut should mitigate"
        assert r["service_alive_after"], f"{cve}: service must stay up"
