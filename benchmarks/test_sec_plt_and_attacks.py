"""§4.2 attack-surface reduction: PLT-entry removal, ret2plt, BROP.

Paper claims reproduced here:

* init-code removal also removes *executed* PLT entries that are only
  used during initialization (43/56 for Nginx, 33/57 for Lighttpd);
* the ``fork`` PLT entry is among the removed ones, so a ret2plt pivot
  into ``fork@plt`` kills the worker instead of spawning a process;
* BROP needs the master's respawn-after-crash behaviour; with the
  post-init fork path wiped, the first crash probe ends the service
  and the brute force is infeasible.
"""

from __future__ import annotations

import json

from repro.analysis import executed_plt_entries, plt_entries_in_blocks
from repro.apps import NGINX_PORT, nginx_worker
from repro.attacks import PROBES_REQUIRED, attempt_ret2plt, run_brop
from repro.core import DynaCut
from repro.tracing import merge_traces
from repro.workloads import HttpClient

from conftest import print_table, profile_lighttpd, profile_nginx


def _plt_stats(profiled):
    binary = profiled.kernel.binaries[profiled.binary]
    executed = executed_plt_entries(
        binary, merge_traces([profiled.init_trace, profiled.serving_trace])
    )
    removed = plt_entries_in_blocks(
        binary, list(profiled.init_report.init_only)
    ) & executed
    return executed, removed


def test_sec_plt_entry_removal_and_attacks(benchmark, results_dir):
    def run():
        nginx, __ = profile_nginx()
        lighttpd, __ = profile_lighttpd()
        nginx_stats = _plt_stats(nginx)
        lighttpd_stats = _plt_stats(lighttpd)

        # vanilla attack outcomes
        kernel = nginx.kernel
        binary = kernel.binaries[nginx.binary]
        worker = nginx_worker(kernel, nginx.root)
        vanilla_ret2plt = attempt_ret2plt(kernel, worker, binary, "fork")
        # the hijacked worker died; let the master reap and respawn
        # before the next attack begins
        from repro.attacks import live_workers

        kernel.run_until(
            lambda: bool(live_workers(kernel, nginx.root.pid)),
            max_instructions=4_000_000,
        )
        vanilla_brop = run_brop(
            kernel, nginx.root, NGINX_PORT, probes=PROBES_REQUIRED
        )

        # customized instance
        nginx2, __ = profile_nginx()
        dynacut = DynaCut(nginx2.kernel)
        dynacut.remove_init_code(
            nginx2.root.pid, nginx2.binary,
            list(nginx2.init_report.init_only), wipe=True,
        )
        master = dynacut.restored_process(nginx2.root.pid)
        assert HttpClient(nginx2.kernel, NGINX_PORT).get("/").status == 200
        binary2 = nginx2.kernel.binaries[nginx2.binary]
        worker2 = nginx_worker(nginx2.kernel, master)
        cut_ret2plt = attempt_ret2plt(nginx2.kernel, worker2, binary2, "fork")
        cut_brop = run_brop(
            nginx2.kernel, master, NGINX_PORT, probes=PROBES_REQUIRED
        )
        return (nginx_stats, lighttpd_stats, vanilla_ret2plt, vanilla_brop,
                cut_ret2plt, cut_brop)

    (nginx_stats, lighttpd_stats, vanilla_ret2plt, vanilla_brop,
     cut_ret2plt, cut_brop) = benchmark.pedantic(run, rounds=1, iterations=1)

    plt_rows = []
    for app, (executed, removed) in (("Nginx", nginx_stats),
                                     ("Lighttpd", lighttpd_stats)):
        plt_rows.append([
            app, len(executed), len(removed),
            f"{len(removed) / len(executed):.0%}",
            ", ".join(sorted(removed)[:6]) + ("..." if len(removed) > 6 else ""),
        ])
    print_table(
        "§4.2: executed PLT entries removed by init-code removal",
        ["app", "executed PLT", "removed", "share", "examples"],
        plt_rows,
    )

    attack_rows = [
        ["ret2plt(fork)", "fork invoked" if vanilla_ret2plt.attack_succeeded
         else "blocked",
         "fork invoked" if cut_ret2plt.attack_succeeded else "blocked"],
        ["BROP", f"feasible ({vanilla_brop.respawns_observed} respawns)"
         if vanilla_brop.feasible else "infeasible",
         f"feasible ({cut_brop.respawns_observed} respawns)"
         if cut_brop.feasible else "infeasible"],
    ]
    print_table(
        "§4.2: attack outcomes (vanilla vs DynaCut-customized Nginx)",
        ["attack", "vanilla", "w/ DynaCut"],
        attack_rows,
    )
    (results_dir / "sec_plt_attacks.json").write_text(json.dumps({
        "nginx_plt": {"executed": len(nginx_stats[0]),
                      "removed": len(nginx_stats[1]),
                      "removed_names": sorted(nginx_stats[1])},
        "lighttpd_plt": {"executed": len(lighttpd_stats[0]),
                         "removed": len(lighttpd_stats[1]),
                         "removed_names": sorted(lighttpd_stats[1])},
        "vanilla": {"ret2plt_fork": vanilla_ret2plt.attack_succeeded,
                    "brop_feasible": vanilla_brop.feasible},
        "dynacut": {"ret2plt_fork": cut_ret2plt.attack_succeeded,
                    "brop_feasible": cut_brop.feasible},
    }, indent=2))

    # paper shape: a substantial share of executed PLT entries goes away
    for app, (executed, removed) in (("Nginx", nginx_stats),
                                     ("Lighttpd", lighttpd_stats)):
        assert len(removed) >= 0.25 * len(executed), app
    # fork is among the removed Nginx entries (the BROP-critical one)
    assert "fork" in nginx_stats[1]
    # attack outcomes flip
    assert vanilla_ret2plt.attack_succeeded
    assert not cut_ret2plt.attack_succeeded
    assert vanilla_brop.feasible
    assert not cut_brop.feasible
