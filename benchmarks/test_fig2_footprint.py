"""Figure 2: memory footprint of executed / unused / init-only blocks.

The paper visualizes 605.mcf_s and Lighttpd: most static blocks are
never executed (gray), and a visible slice of the executed ones is
initialization-only (red).  This bench regenerates the underlying
numbers and a coarse text rendering of the footprint map.
"""

from __future__ import annotations

import json

from repro.analysis import build_cfg
from conftest import (
    print_table,
    profile_lighttpd,
    profile_spec,
)


def _footprint(profiled):
    kernel = profiled.kernel
    binary = kernel.binaries[profiled.binary]
    cfg = build_cfg(binary)
    executed = {
        b.offset for b in profiled.init_trace.module_blocks(profiled.binary)
    } | {b.offset for b in profiled.serving_trace.module_blocks(profiled.binary)}
    init_only_starts = {b.offset for b in profiled.init_report.removed_blocks}
    rows = {
        "total_static_blocks": cfg.block_count,
        "executed_blocks": len(executed & cfg.block_starts()),
        "unused_blocks": len(cfg.block_starts() - executed),
        "init_only_blocks": len(init_only_starts),
    }
    return cfg, executed, init_only_starts, rows


def _render_map(cfg, executed, init_only, columns: int = 64) -> str:
    """One character per static block: '.' unused, '#' executed, 'I' init."""
    cells = []
    for block in sorted(cfg.blocks):
        if block.start in init_only:
            cells.append("I")
        elif block.start in executed:
            cells.append("#")
        else:
            cells.append(".")
    return "\n".join(
        "".join(cells[i:i + columns]) for i in range(0, len(cells), columns)
    )


def test_fig2_memory_footprints(benchmark, results_dir):
    def run():
        mcf = profile_spec("605.mcf_s", to_completion=True)
        lighttpd, __ = profile_lighttpd()
        return mcf, lighttpd

    mcf, lighttpd = benchmark.pedantic(run, rounds=1, iterations=1)

    results = {}
    rows = []
    for label, profiled in (("605.mcf_s", mcf), ("Lighttpd", lighttpd)):
        cfg, executed, init_only, stats = _footprint(profiled)
        results[label] = stats
        rows.append([
            label,
            stats["total_static_blocks"],
            stats["executed_blocks"],
            stats["unused_blocks"],
            stats["init_only_blocks"],
            f"{stats['unused_blocks'] / stats['total_static_blocks']:.0%}",
        ])
        print(f"\n--- footprint map: {label} "
              "('.' unused, '#' executed, 'I' init-only) ---")
        print(_render_map(cfg, executed, init_only))

        from repro.tools.svgplot import GridMap

        cells = []
        for block in sorted(cfg.blocks):
            if block.start in init_only:
                cells.append("init")
            elif block.start in executed:
                cells.append("executed")
            else:
                cells.append("unused")
        GridMap(
            title=f"Figure 2: {label} basic-block liveness",
            cells=cells,
            palette={"executed": "#1f77b4", "init": "#d62728",
                     "unused": "#cccccc"},
            legend={"executed": "executed", "init": "init-only",
                    "unused": "never executed"},
        ).save(results_dir / f"fig2_{label.replace('.', '_')}.svg")

    print_table(
        "Figure 2: basic-block liveness footprint",
        ["app", "total BBs", "executed", "unused", "init-only", "unused %"],
        rows,
    )
    (results_dir / "fig2_footprint.json").write_text(json.dumps(results, indent=2))

    # paper shape: a significant share of blocks never executes, and the
    # server has a visible init-only slice among the executed blocks
    for label, stats in results.items():
        assert stats["unused_blocks"] >= 0.15 * stats["total_static_blocks"], label
        assert stats["init_only_blocks"] > 0, label
    assert (
        results["Lighttpd"]["init_only_blocks"]
        > results["605.mcf_s"]["init_only_blocks"]
    ), "servers have more init-only code than the small compute kernel"
