"""Figure 6: overhead of dynamically customizing code features.

Paper numbers (i5-10210U): Lighttpd 0.274 s, Nginx 0.56 s, Redis 0.29 s,
stacked as checkpoint / int3 patch / sighandler insertion / restore,
with Nginx costlier because two processes are snapshotted.

This bench disables the same features (HTTP PUT+DELETE; Redis SET) via
the redirect policy and reports the virtual-time breakdown.
"""

from __future__ import annotations

import json

from repro.core import BlockMode, DynaCut, TrapPolicy
from repro.workloads import HttpClient, RedisClient
from repro.apps import LIGHTTPD_PORT, NGINX_PORT, REDIS_PORT

from conftest import print_table, profile_lighttpd, profile_nginx, profile_redis


def _customize(profiled, feature, redirect_symbol):
    dynacut = DynaCut(profiled.kernel)
    report = dynacut.disable_feature(
        profiled.root.pid, feature, policy=TrapPolicy.REDIRECT,
        mode=BlockMode.ENTRY, redirect_symbol=redirect_symbol,
    )
    return dynacut, report


def test_fig6_feature_customization_overhead(benchmark, results_dir):
    def run():
        out = {}

        lighttpd, dav = profile_lighttpd(with_dav_feature=True)
        __, report = _customize(lighttpd, dav, "http_forbidden_entry")
        client = HttpClient(lighttpd.kernel, LIGHTTPD_PORT)
        assert client.put("/x", "v").status == 403
        assert client.get("/").status == 200
        out["Lighttpd"] = (lighttpd, report)

        nginx, dav = profile_nginx(with_dav_feature=True)
        __, report = _customize(nginx, dav, "ngx_forbidden_entry")
        client = HttpClient(nginx.kernel, NGINX_PORT)
        assert client.put("/x", "v").status == 403
        assert client.get("/").status == 200
        out["Nginx"] = (nginx, report)

        redis, feature = profile_redis(feature_command="SET probe v")
        __, report = _customize(redis, feature, "redis_unknown_cmd")
        client = RedisClient(redis.kernel, REDIS_PORT)
        assert client.command("SET k v").startswith("-ERR")
        assert client.ping()
        out["Redis"] = (redis, report)
        return out

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    results = {}
    for app, (profiled, report) in outcomes.items():
        breakdown = report.breakdown_ms()
        image_mb = report.image_bytes / 1e6
        rows.append([
            app,
            f"{image_mb:.2f}MB" + (f" x{len(report.pids)}" if len(report.pids) > 1 else ""),
            f"{breakdown['checkpoint']:.1f}",
            f"{breakdown['disable code w/ int3']:.1f}",
            f"{breakdown['insert sighandler']:.1f}",
            f"{breakdown['restore']:.1f}",
            f"{breakdown['total']:.1f}",
        ])
        results[app] = breakdown | {"image_bytes": report.image_bytes,
                                    "processes": len(report.pids)}
    print_table(
        "Figure 6: feature-customization overhead (virtual ms)",
        ["app", "image", "checkpoint", "int3", "sighandler", "restore", "total"],
        rows,
    )
    (results_dir / "fig6_feature_removal.json").write_text(
        json.dumps(results, indent=2)
    )

    # paper shape assertions
    totals = {app: r["total"] for app, r in results.items()}
    # all three land in the sub-second "service blip" regime
    for app, total in totals.items():
        assert 50 < total < 1000, (app, total)
    # Nginx costs the most: two processes to checkpoint and restore
    assert totals["Nginx"] > totals["Lighttpd"]
    assert totals["Nginx"] > totals["Redis"]
    assert results["Nginx"]["processes"] == 2
    # the int3 patch itself is a negligible slice of the total
    for app, r in results.items():
        assert r["disable code w/ int3"] < 0.2 * r["total"], app
