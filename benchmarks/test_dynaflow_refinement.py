"""DynaFlow refinement study: suspect-set shrinkage under dataflow proofs.

The PR 1 baseline (``results/dynalint_refinement.json``) classifies
removal sets with pure CFG reachability: every kept block is assumed
live, so any removed block a kept block can reach stays ``SUSPECT``.
The DynaFlow prover replaces that assumption with value-set analysis —
resolved indirect-branch targets, an address-taken bound for the rest,
and proven liveness roots — and re-classifies the same thin-profile
removal sets over the server and SPEC guests.

Measured here, per guest: removal-set size, legacy vs prove verdict
counts, indirect-site resolution stats, and (for the guests run
end-to-end under the verifier) every trap-restore attributed to its
classification bucket.  The acceptance bar: at least 30% of the
previously-suspect blocks upgrade, and **zero** verifier restores land
in a block the prover marked ``PROVABLY_DEAD``.
"""

from __future__ import annotations

import json

from repro.tools.dynalint_cli import (
    SERVER_GUESTS,
    SPEC_GUESTS,
    collect_refinement,
)

from conftest import print_table


def test_dynaflow_refinement(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: collect_refinement(SERVER_GUESTS + SPEC_GUESTS),
        rounds=1, iterations=1,
    )

    rows = []
    for row in results["guests"]:
        verify = row.get("verify") or {}
        rows.append([
            row["guest"],
            row["removal_set"],
            row["legacy"]["suspect"],
            row["prove"]["suspect"],
            row["suspects_upgraded"],
            row["flow"]["resolved_internal"] + row["flow"]["resolved_external"],
            row["flow"]["unresolved"],
            verify.get("trap_restores", "-"),
            verify.get("provably_dead_restores", "-"),
        ])
    print_table(
        "DynaFlow refinement: legacy CFG reachability vs dataflow proofs",
        ["guest", "removal", "suspects", "proved", "upgraded",
         "resolved", "unresolved", "restores", "dead restores"],
        rows,
    )
    (results_dir / "dynaflow_refinement.json").write_text(
        json.dumps(results, indent=2, sort_keys=True)
    )

    totals = results["totals"]
    # every guest must get a full proof — no hazard/unbounded fallback
    assert all(r["mode"] == "prove" for r in results["guests"])
    # ≥30% of previously-suspect blocks reclassified across the suite
    assert totals["legacy_suspects"] > 0
    assert totals["suspect_shrinkage_pct"] >= 30.0
    # the prover's dead verdicts hold up at run time: the verifier never
    # restored a block classified PROVABLY_DEAD
    assert totals["provably_dead_restores"] == 0
    # the end-to-end guests stayed functional under the wanted workload
    verify_rows = [r["verify"] for r in results["guests"] if "verify" in r]
    assert verify_rows, "at least one guest must run under the verifier"
    for verify in verify_rows:
        assert verify["responses"], "exercise traffic must get responses"
    # indirect sites: the VSA must resolve the PLT tails everywhere and
    # never leave a site unbounded on the server guests
    for row in results["guests"]:
        flow = row["flow"]
        assert flow["resolved_external"] > 0
        assert flow["unresolved"] <= 1
    # comparison against the PR 1 baseline artifact, when present: the
    # prove-mode refined sets must shrink the suspect pool it reported
    baseline_path = results_dir / "dynalint_refinement.json"
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        legacy_counts = baseline["refined"]["classification"]
        lighttpd = next(
            r for r in results["guests"] if r["guest"] == "lighttpd"
        )
        assert lighttpd["prove"]["suspect"] < legacy_counts["suspect"]
