"""Extension benchmark: temporal syscall specialization (§5).

Reports, per server: the init-phase vs serving-phase syscall sets, the
post-init allow-list, the sensitive syscalls it drops, and the cost of
installing the filter through a rewrite — plus proof that the filter
is enforced and liftable.
"""

from __future__ import annotations

import json

from repro.core import (
    DynaCut,
    dropped_syscalls,
    serving_allowlist,
    specialization_report,
)
from repro.kernel import Sys
from repro.workloads import RedisClient, HttpClient
from repro.apps import LIGHTTPD_PORT, REDIS_PORT

from conftest import print_table, profile_lighttpd, profile_redis


def test_ext_syscall_specialization(benchmark, results_dir):
    def run():
        out = {}
        for label, profiler, port, client_cls in (
            ("Redis", profile_redis, REDIS_PORT, RedisClient),
            ("Lighttpd", profile_lighttpd, LIGHTTPD_PORT, HttpClient),
        ):
            profiled, __ = profiler()
            kernel = profiled.kernel
            report = specialization_report(
                profiled.init_trace, profiled.serving_trace
            )
            allowed = serving_allowlist(profiled.serving_trace)
            dynacut = DynaCut(kernel)
            rewrite = dynacut.restrict_syscalls(profiled.root.pid, set(allowed))
            proc = dynacut.restored_process(profiled.root.pid)

            # service continues under the filter
            if label == "Redis":
                client = RedisClient(kernel, REDIS_PORT)
                serving_ok = client.ping() and client.set("k", "v")
            else:
                client = HttpClient(kernel, LIGHTTPD_PORT)
                serving_ok = client.get("/").status == 200

            out[label] = {
                "report": report,
                "dropped_count": len(
                    dropped_syscalls(profiled.init_trace, profiled.serving_trace)
                ),
                "allowed_count": len(allowed),
                "install_ms": rewrite.total_ns / 1e6,
                "serving_ok": bool(serving_ok),
                "fork_allowed": int(Sys.FORK) in allowed,
                "open_allowed": int(Sys.OPEN) in allowed,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, r in results.items():
        rows.append([
            label,
            len(r["report"]["init_syscalls"]),
            r["allowed_count"],
            r["dropped_count"],
            ", ".join(r["report"]["dropped"][:6]),
            f"{r['install_ms']:.0f}",
            r["serving_ok"],
        ])
    print_table(
        "Extension: temporal syscall specialization",
        ["app", "init syscalls", "post-init allowed", "dropped",
         "dropped (examples)", "install ms", "still serving"],
        rows,
    )
    (results_dir / "ext_syscall_specialization.json").write_text(json.dumps(
        {k: {kk: vv for kk, vv in v.items() if kk != "report"} | v["report"]
         for k, v in results.items()},
        indent=2,
    ))

    for label, r in results.items():
        assert r["serving_ok"], label
        assert r["dropped_count"] >= 3, label
        assert not r["fork_allowed"], label
        assert r["install_ms"] < 1000, label
    # Redis serves purely from memory: even open() goes away post-init.
    # Lighttpd is a file server, so open() legitimately stays allowed.
    assert not results["Redis"]["open_allowed"]
    assert results["Lighttpd"]["open_allowed"]
