"""Virtual-time overhead of the transactional customize() engine.

Three scenarios over miniredis, all in virtual nanoseconds:

* **clean** — a fault-free committed transaction; the baseline cost of
  a customize session (checkpoint + patch + inject + restore);
* **retry** — one transient dump fault: the engine pays one backoff
  plus the re-dump, then commits;
* **rollback** — one permanent restore fault: the engine pays the
  attempt plus the pristine restore, then aborts with the service up.

The numbers quantify the paper-level claim that failure handling costs
(at most) one extra checkpoint-or-restore leg, not a service outage.
"""

from __future__ import annotations

import json

from repro.apps import REDIS_PORT, stage_redis
from repro.apps.kvstore import REDIS_BINARY
from repro.core import (
    BlockMode,
    CustomizationAborted,
    DynaCut,
    TraceDiff,
    TrapPolicy,
)
from repro.faults import FaultPlan
from repro.kernel import Kernel
from repro.tracing import BlockTracer
from repro.workloads import RedisClient

from conftest import print_table


def _world():
    kernel = Kernel()
    proc = stage_redis(kernel)
    tracer = BlockTracer(kernel, proc).attach()
    client = RedisClient(kernel, REDIS_PORT)
    for cmd in ("PING", "GET a", "DEL a"):
        client.command(cmd)
    wanted = tracer.nudge_dump()
    client.command("SET a 1")
    undesired = tracer.finish()
    feature = TraceDiff(REDIS_BINARY).feature_blocks(
        "SET", [wanted], [undesired]
    )
    return kernel, proc.pid, client, feature


def _session(plan: FaultPlan | None):
    kernel, pid, client, feature = _world()
    dynacut = DynaCut(kernel)
    start = kernel.clock_ns
    outcome = "committed"
    try:
        if plan is None:
            report = dynacut.disable_feature(
                pid, feature, policy=TrapPolicy.TERMINATE, mode=BlockMode.ALL
            )
        else:
            with plan:
                report = dynacut.disable_feature(
                    pid, feature,
                    policy=TrapPolicy.TERMINATE, mode=BlockMode.ALL,
                )
    except CustomizationAborted as exc:
        outcome = "rolled-back"
        report = exc.report
    elapsed = kernel.clock_ns - start
    assert kernel.processes[pid].alive
    assert client.ping()
    return {
        "outcome": outcome,
        "attempts": report.attempts,
        "session_ns": elapsed,
        "journal_entries": len(dynacut.last_journal.entries),
    }


def test_transaction_overhead(benchmark, results_dir):
    cost = DynaCut(Kernel()).cost_model

    def run():
        return {
            "clean": _session(None),
            "retry": _session(
                FaultPlan(seed=1).arm(
                    "checkpoint.dump_pages", "transient", on_call=1
                )
            ),
            "rollback": _session(
                FaultPlan(seed=2).arm("restore.memory", "permanent", on_call=1)
            ),
            "backoff_ns": [cost.retry_backoff(n) for n in (1, 2, 3, 4, 5)],
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    clean = results["clean"]
    retry = results["retry"]
    rollback = results["rollback"]

    print_table(
        "Transactional customize(): virtual-time cost per scenario",
        ["scenario", "outcome", "attempts", "session ms", "journal entries"],
        [
            [name, row["outcome"], row["attempts"],
             round(row["session_ns"] / 1e6, 2), row["journal_entries"]]
            for name, row in (
                ("clean", clean), ("retry", retry), ("rollback", rollback)
            )
        ],
    )
    (results_dir / "transaction_overhead.json").write_text(
        json.dumps(results, indent=2)
    )

    assert clean["outcome"] == "committed" and clean["attempts"] == 1
    assert retry["outcome"] == "committed" and retry["attempts"] == 2
    assert rollback["outcome"] == "rolled-back"

    # a retried dump costs at least one backoff more than a clean run,
    # but far less than twice the session (the tree was never destroyed)
    assert retry["session_ns"] >= clean["session_ns"] + cost.retry_backoff(1)
    assert retry["session_ns"] < 2 * clean["session_ns"]
    # a rollback pays roughly one extra restore leg, not a second session
    assert rollback["session_ns"] < 2 * clean["session_ns"]
    # backoff is capped
    assert results["backoff_ns"][-1] == cost.retry_backoff_cap_ns
    assert results["backoff_ns"][0] == cost.retry_backoff_ns
