"""DynaShelve: debloat retained under workload drift, policy by policy.

The drift benchmarks so far measured *detection*; this one measures
what each ``drift_action`` leaves of the customization once a drifting
workload has come and gone.  The same seeded three-phase workload
(wanted-only warmup, a 5-second window where a fraction of requests
exercises the removed PUT path, cooldown) runs against three fresh
two-instance verify-mode fleets:

* ``reenable`` — the pre-shelving policy: the first windowed burst
  restores the whole feature fleet-wide and the debloat is gone for
  good (retention 0 %);
* ``shelve`` — only the trapping PUT-path blocks come back; the cold
  DELETE half stays removed throughout, and after cooldown the decay
  sweep re-removes the shelf (retention recovers to 100 %);
* ``recustomize`` — one adaptive narrowing round swaps in the removal
  set minus the trapped blocks, keeping the cold half removed with no
  further trap traffic at all.

In every scenario the workload must lose **zero** requests: wanted
traffic and the drifted PUTs both serve the whole window.
"""

from __future__ import annotations

import json
from argparse import Namespace

from repro.telemetry import TelemetryHub
from repro.tools.shelve_cli import SCENARIOS, run_scenario

from conftest import print_table

SEED = 902
RETENTION_FLOOR_PCT = 60.0


def _run_retention() -> dict:
    args = Namespace(size=2, put_mix=0.35, retention_floor=RETENTION_FLOOR_PCT)
    return {
        action: run_scenario(args, SEED, action, TelemetryHub())
        for action in SCENARIOS
    }


def test_shelve_debloat_retention(benchmark, results_dir):
    results = benchmark.pedantic(_run_retention, rounds=1, iterations=1)

    print_table(
        "DynaShelve: retained debloat after a drifting workload "
        f"(2x minilight, verify mode, seed {SEED})",
        ["drift_action", "drift %", "final %", "shelved", "decayed",
         "rounds", "PUTs", "failed"],
        [
            [
                action,
                record["retained_drift_pct"],
                record["retained_final_pct"],
                record["drift"]["shelved_blocks"],
                record["drift"]["decayed_blocks"],
                len(record["drift"]["recustomize_rounds"]),
                record["workload"]["puts_issued"],
                record["workload"]["failed_requests"],
            ]
            for action, record in results.items()
        ],
    )
    (results_dir / "shelve_retention.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )

    # zero unaccounted request losses in every scenario: wanted traffic
    # and the drifted PUT mix both serve throughout
    for action, record in results.items():
        workload = record["workload"]
        assert record["accounted"], action
        assert workload["failed_requests"] == 0, action
        assert workload["errors"] == 0, action
        assert workload["puts_issued"] > 0, action
        assert workload["puts_ok"] == workload["puts_issued"], action
        assert record["rollout_completed"], action

    # the pre-shelving policy collapses to zero retained debloat
    reenable = results["reenable"]
    assert reenable["drift"]["triggered"]
    assert reenable["retained_final_pct"] == 0.0

    # shelving keeps the cold half removed during the drift and wins
    # everything back once the drift subsides
    shelve = results["shelve"]
    assert shelve["retained_drift_pct"] > 0.0
    assert shelve["retained_final_pct"] >= RETENTION_FLOOR_PCT
    assert shelve["retained_final_pct"] == 100.0
    assert shelve["drift"]["shelved_blocks"] > 0
    assert shelve["drift"]["decayed_blocks"] == shelve["drift"]["shelved_blocks"]
    assert shelve["drift"]["escalated"] == []

    # recustomize narrows instead of restoring: at least one round, a
    # non-empty narrowed set, and no block the static classifier proved
    # dead was ever restored by the verifier
    recustomize = results["recustomize"]
    rounds = recustomize["drift"]["recustomize_rounds"]
    assert len(rounds) >= 1
    assert all(entry["narrowed_blocks"] > 0 for entry in rounds)
    assert all(entry["dead_restores"] == 0 for entry in rounds)
    assert 0.0 < recustomize["retained_final_pct"] < 100.0
