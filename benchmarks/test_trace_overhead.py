"""Host-time overhead of per-request tracing on the Figure 8 timeline.

Runs the single-kernel Figure 8 scenario (closed-loop GETs with a SET
trickle while DynaCut disables and re-enables SET under the verifier)
twice per round — once untraced, once with a
:class:`~repro.telemetry.RequestTracer` — and pins the observability
contract:

* tracing is **virtually invisible**: the traced and untraced runs
  produce the same request count, the same per-bucket timeline, and
  the same final virtual clock;
* tracing is **cheap in host time**: the traced timeline costs at most
  10% more wall-clock time than the untraced one (min over rounds);
* the traces are **honest**: every request satisfies the phase-sum
  accounting identity, the rewrite events show up as ``rewrite-stall``
  time, and the post-disable SET shows up as a ``trap``.
"""

from __future__ import annotations

import json
import time

from repro.core import BlockMode, DynaCut, TrapPolicy
from repro.telemetry import RequestTracer, attribute_traces
from repro.workloads import (
    SECOND_NS,
    RedisClient,
    TimelineEvent,
    run_request_timeline,
)
from repro.apps import REDIS_PORT

from conftest import print_table, profile_redis

DURATION_S = 12
DISABLE_AT_S = 3
ENABLE_AT_S = 8
SET_EVERY = 8
ROUNDS = 3


def _timeline(tracer: RequestTracer | None):
    profiled, feature = profile_redis(feature_command="SET probe v")
    kernel = profiled.kernel
    client = RedisClient(kernel, REDIS_PORT)
    client.set("hot", "value")
    state = {"proc": profiled.root, "requests": 0}
    dynacut = DynaCut(kernel)

    def disable():
        dynacut.disable_feature(
            state["proc"].pid, feature, policy=TrapPolicy.VERIFY,
            mode=BlockMode.ENTRY,
        )
        state["proc"] = dynacut.restored_process(state["proc"].pid)

    def enable():
        dynacut.enable_feature(state["proc"].pid, feature)
        state["proc"] = dynacut.restored_process(state["proc"].pid)

    events = [
        TimelineEvent(DISABLE_AT_S * SECOND_NS, "disable SET", disable),
        TimelineEvent(ENABLE_AT_S * SECOND_NS, "re-enable SET", enable),
    ]

    def request_once() -> bool:
        state["requests"] += 1
        if state["requests"] % SET_EVERY == 0:
            # post-disable, this traps into the verifier (which heals
            # the entry block) — the trap lands inside this request
            return client.set("hot", "value")
        return client.get("hot") == "value"

    started = time.perf_counter()
    result = run_request_timeline(
        kernel, request_once, duration_ns=DURATION_S * SECOND_NS,
        bucket_ns=SECOND_NS, events=events,
        max_requests=100_000, tracer=tracer,
    )
    elapsed = time.perf_counter() - started
    return result, kernel.clock_ns, elapsed


def test_trace_overhead(benchmark, results_dir):
    def run():
        rounds = []
        for __ in range(ROUNDS):
            tracer = RequestTracer()
            base_result, base_clock, base_s = _timeline(None)
            traced_result, traced_clock, traced_s = _timeline(tracer)
            rounds.append({
                "base": (base_result, base_clock, base_s),
                "traced": (traced_result, traced_clock, traced_s),
                "tracer": tracer,
            })
        return rounds

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)

    # --- virtual behavior identical, round by round -------------------
    for entry in rounds:
        base_result, base_clock, __ = entry["base"]
        traced_result, traced_clock, __ = entry["traced"]
        assert traced_result.total_requests == base_result.total_requests
        assert traced_result.failed_requests == base_result.failed_requests
        assert traced_clock == base_clock
        assert [p.completed for p in traced_result.points] == [
            p.completed for p in base_result.points
        ]

    # --- host-time overhead (min over rounds, the stable estimator) ---
    base_s = min(entry["base"][2] for entry in rounds)
    traced_s = min(entry["traced"][2] for entry in rounds)
    overhead = traced_s / base_s - 1

    # --- trace honesty on the last round's tracer ---------------------
    tracer = rounds[-1]["tracer"]
    attribution = attribute_traces(tracer)
    summary = attribution["summary"]
    totals = summary["phase_totals_ns"]
    traced_result = rounds[-1]["traced"][0]

    print_table(
        "Per-request tracing: host-time overhead on the Fig. 8 timeline",
        ["run", "requests", "virtual ms", "host s (min)"],
        [
            ["untraced", rounds[-1]["base"][0].total_requests,
             round(DURATION_S * 1e3, 1), round(base_s, 3)],
            ["traced", traced_result.total_requests,
             round(DURATION_S * 1e3, 1), round(traced_s, 3)],
        ],
    )
    print(f"overhead: {overhead * 100:.1f}% "
          f"({summary['requests']} traces, "
          f"{summary['identity_violations']} identity violations, "
          f"trap {totals['trap'] / 1e6:.2f} ms, "
          f"rewrite-stall {totals['rewrite-stall'] / 1e6:.2f} ms)")
    (results_dir / "trace_overhead.json").write_text(json.dumps({
        "rounds": ROUNDS,
        "requests": summary["requests"],
        "base_host_s": base_s,
        "traced_host_s": traced_s,
        "overhead": overhead,
        "identity_violations": summary["identity_violations"],
        "phase_totals_ns": totals,
        "latency_ns": summary["latency_ns"],
    }, indent=2))

    assert summary["requests"] == traced_result.total_requests
    assert summary["identity_violations"] == 0
    # the disable/enable rewrites were paid by specific requests...
    assert totals["rewrite-stall"] > 0
    # ...and the first post-disable SET trapped into the verifier
    assert totals["trap"] > 0
    assert summary["latency_ns"]["p99"] > 0

    assert overhead <= 0.10, f"tracing overhead {overhead * 100:.1f}% > 10%"
