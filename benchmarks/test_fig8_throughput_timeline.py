"""Figure 8: Redis throughput while DynaCut rewrites the live server.

The paper runs redis-benchmark GETs in a loop, disables SET at ~20 s,
re-enables it at ~48 s, and shows: (a) the server never dies, (b) each
rewrite costs only a sub-second dip, (c) throughput before, between,
and after the rewrites is indistinguishable from the vanilla server.
"""

from __future__ import annotations

import json

from repro.core import BlockMode, DynaCut, TrapPolicy
from repro.workloads import (
    RedisClient,
    SECOND_NS,
    TimelineEvent,
    run_request_timeline,
)
from repro.apps import REDIS_PORT

from conftest import print_table, profile_redis

DURATION_S = 30
DISABLE_AT_S = 8
ENABLE_AT_S = 20


def _timeline(with_dynacut: bool):
    profiled, feature = profile_redis(feature_command="SET probe v")
    kernel = profiled.kernel
    client = RedisClient(kernel, REDIS_PORT)
    client.set("hot", "value")
    state = {"proc": profiled.root}

    events = []
    if with_dynacut:
        dynacut = DynaCut(kernel)

        def disable():
            dynacut.disable_feature(
                state["proc"].pid, feature, policy=TrapPolicy.REDIRECT,
                mode=BlockMode.ENTRY, redirect_symbol="redis_unknown_cmd",
            )
            state["proc"] = dynacut.restored_process(state["proc"].pid)

        def enable():
            dynacut.enable_feature(state["proc"].pid, feature)
            state["proc"] = dynacut.restored_process(state["proc"].pid)

        events = [
            TimelineEvent(DISABLE_AT_S * SECOND_NS, "disable SET", disable),
            TimelineEvent(ENABLE_AT_S * SECOND_NS, "re-enable SET", enable),
        ]

    def one_get() -> bool:
        try:
            return client.get("hot") == "value"
        except Exception:
            return False

    result = run_request_timeline(
        kernel, one_get, duration_ns=DURATION_S * SECOND_NS,
        bucket_ns=SECOND_NS, events=events,
        max_requests=100_000,
    )
    return result, state["proc"], kernel, client


def test_fig8_redis_throughput_timeline(benchmark, results_dir):
    def run():
        with_dc = _timeline(with_dynacut=True)
        without = _timeline(with_dynacut=False)
        return with_dc, without

    (dc_result, proc, kernel, client), (base_result, *__) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    dc_series = dc_result.throughput_series(SECOND_NS)
    base_series = base_result.throughput_series(SECOND_NS)
    rows = [
        [f"{t:.0f}", f"{dc:.0f}", f"{base:.0f}"]
        for (t, dc), (__, base) in zip(dc_series, base_series)
    ]
    print_table(
        "Figure 8: GET throughput timeline (req/s per 1 s bucket)",
        ["t (s)", "w/ DynaCut", "w/o DynaCut"],
        rows,
    )
    print("events:", [(ns / 1e9, label) for ns, label in dc_result.events_fired])
    (results_dir / "fig8_timeline.json").write_text(json.dumps({
        "with_dynacut": dc_series,
        "without_dynacut": base_series,
        "events": dc_result.events_fired,
    }, indent=2))

    from repro.tools.svgplot import LineChart

    chart = LineChart("Figure 8: Redis GET throughput under DynaCut",
                      "timeline (s)", "throughput (req/s)")
    chart.add_series("w/ DynaCut", dc_series)
    chart.add_series("w/o DynaCut", base_series, dashed=True)
    chart.save(results_dir / "fig8_timeline.svg")

    # (a) the server survived both rewrites and still serves
    assert proc.alive
    assert client.get("hot") == "value"
    assert dc_result.failed_requests == 0

    # (b) the SET feature really was toggled: disabled in the middle
    # window, working again at the end
    assert len(dc_result.events_fired) == 2

    # (c) steady-state throughput matches the vanilla run (±20%)
    def steady(series, lo, hi):
        values = [v for t, v in series if lo <= t < hi and v > 0]
        return sum(values) / len(values)

    for window in ((0, DISABLE_AT_S - 1), (DISABLE_AT_S + 2, ENABLE_AT_S - 1),
                   (ENABLE_AT_S + 2, DURATION_S)):
        dc_rate = steady(dc_series, *window)
        base_rate = steady(base_series, *window)
        assert abs(dc_rate - base_rate) / base_rate < 0.2, window

    # (d) each rewrite shows up as a dip in its bucket: the rewrite
    # buckets are the minima of the DynaCut series
    dc_values = [v for __, v in dc_series]
    dip_buckets = sorted(range(len(dc_values)), key=lambda i: dc_values[i])[:2]
    assert set(dip_buckets) <= {
        DISABLE_AT_S - 1, DISABLE_AT_S, DISABLE_AT_S + 1,
        ENABLE_AT_S - 1, ENABLE_AT_S, ENABLE_AT_S + 1,
    }, dip_buckets
