"""Ablations of DynaCut design choices.

Three studies backing the design decisions documented in DESIGN.md §5:

* **A1 — byte- vs block-identity coverage diff.**  Diffing dynamic
  trace blocks by identity (the paper's presentation) classifies
  blocks as init-only whose bytes are still live, because dynamic
  sub-blocks overlap across phases.  We count how many bytes the naive
  diff would wrongly wipe.
* **A2 — blocking-mode cost.**  Entry-byte patching vs whole-feature
  wiping: the security/overhead trade-off of §3.2.2 (wiping resists
  code reuse but patches many more bytes and costs more to restore).
* **A3 — the CRIU page-dump modification.**  Without DynaCut's
  dump-executable-pages change, int3 patches are silently lost at
  restore (text is rebuilt from the pristine binary); with it, image
  sizes grow but patches survive.
"""

from __future__ import annotations

import json

from repro.core import BlockMode, CoverageGraph, DynaCut, TrapPolicy
from repro.criu import checkpoint_tree
from repro.workloads import RedisClient
from repro.apps import REDIS_PORT

from conftest import print_table, profile_lighttpd, profile_redis


def test_ablation_byte_vs_block_granularity(benchmark, results_dir):
    def run():
        profiled, __ = profile_lighttpd()
        module = profiled.binary
        init_graph = CoverageGraph.from_traces(profiled.init_trace)
        serving_graph = CoverageGraph.from_traces(profiled.serving_trace)

        # naive, block-identity diff (what a literal reading implements)
        naive = init_graph.difference(serving_graph).restrict_to_module(module)
        serving_bytes = serving_graph.covered_bytes(module)
        misclassified = 0
        for block in naive.blocks:
            overlap = sum(
                1 for o in range(block.offset, block.offset + block.size)
                if o in serving_bytes
            )
            misclassified += overlap

        # byte-granular diff (this implementation)
        sound_bytes = profiled.init_report.removable_bytes()
        return len(naive), misclassified, sound_bytes

    naive_blocks, misclassified, sound_bytes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Ablation A1: block-identity diff wrongly wipes live bytes",
        ["naive init-only blocks", "live bytes misclassified",
         "byte-granular removable bytes"],
        [[naive_blocks, misclassified, sound_bytes]],
    )
    (results_dir / "ablation_granularity.json").write_text(json.dumps({
        "naive_blocks": naive_blocks,
        "misclassified_live_bytes": misclassified,
        "sound_removable_bytes": sound_bytes,
    }))
    # the failure mode is real: the naive diff would wipe live bytes
    assert misclassified > 0
    assert sound_bytes > 0


def test_ablation_block_modes(benchmark, results_dir):
    def run():
        out = {}
        for mode in (BlockMode.ENTRY, BlockMode.ALL, BlockMode.WIPE):
            profiled, feature = profile_redis(feature_command="SET probe v")
            dynacut = DynaCut(profiled.kernel)
            report = dynacut.disable_feature(
                profiled.root.pid, feature, policy=TrapPolicy.REDIRECT,
                mode=mode, redirect_symbol="redis_unknown_cmd",
            )
            proc = dynacut.restored_process(profiled.root.pid)
            client = RedisClient(profiled.kernel, REDIS_PORT)
            blocked = client.command("SET k v").startswith("-ERR")
            alive = proc.alive and client.ping()
            enable_report = dynacut.enable_feature(profiled.root.pid, feature,
                                                   mode=mode)
            proc = dynacut.restored_process(profiled.root.pid)
            restored_works = client.set("k", "v") and proc.alive
            out[mode.value] = {
                "blocks_patched": report.stats.blocks_patched,
                "bytes_wiped": report.stats.bytes_wiped,
                "disable_ms": report.total_ns / 1e6,
                "enable_ms": enable_report.total_ns / 1e6,
                "blocked": blocked,
                "alive": alive,
                "restored": bool(restored_works),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode, r["blocks_patched"], r["bytes_wiped"],
         f"{r['disable_ms']:.0f}", f"{r['enable_ms']:.0f}",
         r["blocked"], r["restored"]]
        for mode, r in results.items()
    ]
    print_table(
        "Ablation A2: blocking modes (cost vs anti-code-reuse strength)",
        ["mode", "blocks", "bytes wiped", "disable ms", "enable ms",
         "feature blocked", "restore ok"],
        rows,
    )
    (results_dir / "ablation_modes.json").write_text(json.dumps(results, indent=2))

    for mode, r in results.items():
        assert r["blocked"] and r["alive"] and r["restored"], mode
    assert results["entry"]["blocks_patched"] == 1
    assert results["all"]["blocks_patched"] > 1
    assert results["wipe"]["bytes_wiped"] > results["all"]["bytes_wiped"]
    assert results["wipe"]["disable_ms"] >= results["entry"]["disable_ms"]


def test_ablation_restore_vs_reinit(benchmark, results_dir):
    """Footnote 5: restoring a customized process image is faster than
    launching the program through its whole initialization."""
    from repro.apps import stage_redis
    from repro.criu import checkpoint_tree, restore_tree
    from repro.kernel import Kernel

    def run():
        # cost of a cold boot to ready (virtual time)
        kernel = Kernel()
        boot_start = kernel.clock_ns
        proc = stage_redis(kernel)
        boot_ns = kernel.clock_ns - boot_start

        # cost of restoring the post-init image
        checkpoint = checkpoint_tree(kernel, proc.pid, image_dir=None)
        restore_start = kernel.clock_ns
        (proc,) = restore_tree(kernel, checkpoint)
        restore_ns = kernel.clock_ns - restore_start

        client = RedisClient(kernel, REDIS_PORT)
        assert client.ping()
        return boot_ns, restore_ns

    boot_ns, restore_ns = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation A4: restore customized image vs full re-initialization",
        ["path", "virtual ms"],
        [["cold boot to ready", f"{boot_ns / 1e6:.0f}"],
         ["restore post-init image", f"{restore_ns / 1e6:.0f}"]],
    )
    (results_dir / "ablation_restore_vs_reinit.json").write_text(json.dumps({
        "boot_ms": boot_ns / 1e6, "restore_ms": restore_ns / 1e6,
    }))
    assert restore_ns < boot_ns


def test_ablation_exec_page_dump(benchmark, results_dir):
    def run():
        profiled, __ = profile_redis()
        kernel = profiled.kernel
        with_flag = checkpoint_tree(
            kernel, profiled.root.pid, image_dir=None,
            dump_exec_pages=True, leave_running=True,
        )
        without_flag = checkpoint_tree(
            kernel, profiled.root.pid, image_dir=None,
            dump_exec_pages=False, leave_running=True,
        )
        return with_flag.total_pages(), without_flag.total_pages()

    pages_with, pages_without = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation A3: DynaCut's CRIU page-dump modification",
        ["dump_exec_pages", "image pages", "code patchable in image"],
        [["True (DynaCut)", pages_with, "yes"],
         ["False (vanilla CRIU)", pages_without, "no (rebuilt from binary)"]],
    )
    (results_dir / "ablation_exec_dump.json").write_text(json.dumps({
        "pages_with_exec_dump": pages_with,
        "pages_without": pages_without,
    }))
    assert pages_with > pages_without
