"""Extension benchmark: live library re-randomization (§5).

Measures the cost of moving libc under the running servers and
verifies the security effect: addresses leaked before the move are
dead afterwards, while service (and TCP connections) continue.
"""

from __future__ import annotations

import json

from repro.core import DynaCut
from repro.kernel import ProcessState, Signal
from repro.workloads import HttpClient, RedisClient
from repro.apps import LIGHTTPD_PORT, REDIS_PORT

from conftest import print_table, profile_lighttpd, profile_redis


def _libc_base(proc) -> int:
    return next(m.load_base for m in proc.modules if m.name == "libc.so")


def test_ext_live_rerandomization(benchmark, results_dir):
    def run():
        out = {}
        for label, profiler, port in (
            ("Redis", profile_redis, REDIS_PORT),
            ("Lighttpd", profile_lighttpd, LIGHTTPD_PORT),
        ):
            profiled, __ = profiler()
            kernel = profiled.kernel
            proc = profiled.root
            dynacut = DynaCut(kernel)

            bases = [_libc_base(proc)]
            costs = []
            for __ in range(3):
                report = dynacut.rerandomize_library(proc.pid, "libc.so")
                proc = dynacut.restored_process(proc.pid)
                bases.append(_libc_base(proc))
                costs.append(report.total_ns / 1e6)

            if label == "Redis":
                client = RedisClient(kernel, REDIS_PORT)
                serving = client.ping() and client.set("k", "v")
            else:
                client = HttpClient(kernel, LIGHTTPD_PORT)
                serving = client.get("/").status == 200

            # a pre-move leak is dead: pivot the process there and watch
            # it fault without reaching libc code
            stale = bases[0] + 0x100
            proc.regs.rip = stale
            if proc.state is ProcessState.BLOCKED:
                proc.state = ProcessState.RUNNABLE
                proc.wake_predicate = None
            kernel.run(max_instructions=5_000, until=lambda: not proc.alive)
            out[label] = {
                "bases": [hex(b) for b in bases],
                "distinct_bases": len(set(bases)),
                "move_ms": costs,
                "serving_after_moves": bool(serving),
                "stale_pivot_killed": (not proc.alive)
                and proc.term_signal is Signal.SIGSEGV,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, r["distinct_bases"],
         " / ".join(f"{c:.0f}" for c in r["move_ms"]),
         r["serving_after_moves"], r["stale_pivot_killed"]]
        for label, r in results.items()
    ]
    print_table(
        "Extension: live libc re-randomization",
        ["app", "distinct bases (4 snapshots)", "move cost ms (x3)",
         "serving after", "stale pivot dies"],
        rows,
    )
    (results_dir / "ext_rerandomization.json").write_text(
        json.dumps(results, indent=2)
    )

    for label, r in results.items():
        assert r["distinct_bases"] >= 2, label
        assert r["serving_after_moves"], label
        assert r["stale_pivot_killed"], label
        assert all(c < 1000 for c in r["move_ms"]), label
